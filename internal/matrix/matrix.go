// Package matrix implements the scientific engine of §II-G: dense and CSR
// sparse linear algebra living inside the column store (SLACID [6]).
// Matrices persist as (i, j, v) triples in relational tables, are
// manipulated transactionally like any other data, and run eigenvalue
// computations in-engine — no export/import cycle to external files
// (experiment E14 measures exactly that difference).
package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zero matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Mul returns m × other.
func (m *Dense) Mul(other *Dense) (*Dense, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("matrix: shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewDense(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns m × v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("matrix: vector length %d for %dx%d", len(v), m.Rows, m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// ToCSR converts to sparse form.
func (m *Dense) ToCSR() *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); v != 0 {
				c.ColIdx = append(c.ColIdx, j)
				c.Vals = append(c.Vals, v)
			}
		}
		c.RowPtr[i+1] = len(c.Vals)
	}
	return c
}

// CSR is a compressed-sparse-row matrix — the natural fit for the column
// store's (i, j, v) triple representation.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []float64
}

// Triple is one non-zero entry.
type Triple struct {
	I, J int
	V    float64
}

// FromTriples builds a CSR matrix from unordered (i, j, v) entries;
// duplicate coordinates sum.
func FromTriples(rows, cols int, ts []Triple) (*CSR, error) {
	for _, t := range ts {
		if t.I < 0 || t.I >= rows || t.J < 0 || t.J >= cols {
			return nil, fmt.Errorf("matrix: entry (%d,%d) outside %dx%d", t.I, t.J, rows, cols)
		}
	}
	sorted := append([]Triple(nil), ts...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].I != sorted[b].I {
			return sorted[a].I < sorted[b].I
		}
		return sorted[a].J < sorted[b].J
	})
	// Merge duplicates (row-major sorted, so duplicates are adjacent).
	merged := sorted[:0]
	for _, t := range sorted {
		if n := len(merged); n > 0 && merged[n-1].I == t.I && merged[n-1].J == t.J {
			merged[n-1].V += t.V
			continue
		}
		merged = append(merged, t)
	}
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for _, t := range merged {
		c.RowPtr[t.I+1]++
	}
	for r := 0; r < rows; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	c.ColIdx = make([]int, len(merged))
	c.Vals = make([]float64, len(merged))
	for k, t := range merged {
		c.ColIdx[k] = t.J
		c.Vals[k] = t.V
	}
	return c, nil
}

// NNZ returns the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.Vals) }

// At returns element (i, j) (O(log nnz-per-row)).
func (c *CSR) At(i, j int) float64 {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	idx := sort.SearchInts(c.ColIdx[lo:hi], j)
	if lo+idx < hi && c.ColIdx[lo+idx] == j {
		return c.Vals[lo+idx]
	}
	return 0
}

// MulVec returns c × v.
func (c *CSR) MulVec(v []float64) ([]float64, error) {
	if c.Cols != len(v) {
		return nil, fmt.Errorf("matrix: vector length %d for %dx%d", len(v), c.Rows, c.Cols)
	}
	out := make([]float64, c.Rows)
	for i := 0; i < c.Rows; i++ {
		s := 0.0
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			s += c.Vals[k] * v[c.ColIdx[k]]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns cᵀ.
func (c *CSR) Transpose() *CSR {
	var ts []Triple
	for i := 0; i < c.Rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			ts = append(ts, Triple{I: c.ColIdx[k], J: i, V: c.Vals[k]})
		}
	}
	out, _ := FromTriples(c.Cols, c.Rows, ts)
	return out
}

// ToDense materializes the matrix.
func (c *CSR) ToDense() *Dense {
	out := NewDense(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			out.Set(i, c.ColIdx[k], c.Vals[k])
		}
	}
	return out
}

// Triples returns the non-zero entries in row-major order.
func (c *CSR) Triples() []Triple {
	var ts []Triple
	for i := 0; i < c.Rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			ts = append(ts, Triple{I: i, J: c.ColIdx[k], V: c.Vals[k]})
		}
	}
	return ts
}

// vecMul abstracts the matrix-vector product both representations share.
type vecMul interface {
	MulVec(v []float64) ([]float64, error)
}

// PowerIteration computes the dominant eigenvalue and eigenvector of a
// square matrix via power iteration (the eigenvalue workload of §II-G).
// tol bounds the eigenvalue change between iterations.
func PowerIteration(m vecMul, n int, maxIter int, tol float64) (eigenvalue float64, eigenvector []float64, iters int, err error) {
	if n <= 0 {
		return 0, nil, 0, fmt.Errorf("matrix: empty matrix")
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	var lambda, prev float64
	for iters = 1; iters <= maxIter; iters++ {
		w, e := m.MulVec(v)
		if e != nil {
			return 0, nil, iters, e
		}
		norm := 0.0
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0, v, iters, nil // in the null space; eigenvalue 0
		}
		for i := range w {
			w[i] /= norm
		}
		// Rayleigh quotient.
		mv, e := m.MulVec(w)
		if e != nil {
			return 0, nil, iters, e
		}
		lambda = dot(w, mv)
		v = w
		if iters > 1 && math.Abs(lambda-prev) < tol {
			break
		}
		prev = lambda
	}
	return lambda, v, iters, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Covariance returns the covariance matrix of columns of data (rows =
// observations) — the statistical core of the stock-analytics scenario
// (§V-1).
func Covariance(data *Dense) *Dense {
	n, k := data.Rows, data.Cols
	means := make([]float64, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			means[j] += data.At(i, j)
		}
		means[j] /= float64(n)
	}
	out := NewDense(k, k)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			cov := 0.0
			for i := 0; i < n; i++ {
				cov += (data.At(i, a) - means[a]) * (data.At(i, b) - means[b])
			}
			cov /= float64(n - 1)
			out.Set(a, b, cov)
			out.Set(b, a, cov)
		}
	}
	return out
}
