package matrix

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Store persists matrices as (i, j, v) triple tables inside the column
// store and runs linear algebra directly on them — the SLACID integration
// of §II-G. The export/import baseline (EigenViaExport) reproduces the
// "tedious maintaining of multiple data files" workflow the paper argues
// against; experiment E14 compares the two.
type Store struct {
	eng *sqlexec.Engine
}

// Attach installs the scientific engine into a relational engine.
func Attach(eng *sqlexec.Engine) *Store {
	s := &Store{eng: eng}
	eng.Reg.RegisterScalar("MATRIX_EIGENVALUE", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("matrix: MATRIX_EIGENVALUE(table, rows, cols)")
		}
		ev, _, _, err := s.EigenInEngine(a[0].AsString(), int(a[1].AsInt()), int(a[2].AsInt()))
		if err != nil {
			return value.Null, err
		}
		return value.Float(ev), nil
	})
	eng.Reg.RegisterScalar("MATRIX_NNZ", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("matrix: MATRIX_NNZ(table, rows, cols)")
		}
		m, err := s.LoadCSR(a[0].AsString(), int(a[1].AsInt()), int(a[2].AsInt()))
		if err != nil {
			return value.Null, err
		}
		return value.Int(int64(m.NNZ())), nil
	})
	return s
}

// SaveCSR creates (or replaces) a triple table holding the matrix.
func (s *Store) SaveCSR(table string, m *CSR) error {
	s.eng.Query(fmt.Sprintf("DROP TABLE IF EXISTS %s", table))
	if _, err := s.eng.Query(fmt.Sprintf("CREATE TABLE %s (i INT, j INT, v DOUBLE)", table)); err != nil {
		return err
	}
	sess := s.eng.NewSession()
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		return err
	}
	for _, t := range m.Triples() {
		if _, err := sess.Query(fmt.Sprintf("INSERT INTO %s VALUES (?, ?, ?)", table),
			value.Int(int64(t.I)), value.Int(int64(t.J)), value.Float(t.V)); err != nil {
			return err
		}
	}
	return sess.Commit()
}

// LoadCSR reads a triple table back into a CSR matrix.
func (s *Store) LoadCSR(table string, rows, cols int) (*CSR, error) {
	res, err := s.eng.Query(fmt.Sprintf("SELECT i, j, v FROM %s", table))
	if err != nil {
		return nil, err
	}
	ts := make([]Triple, 0, len(res.Rows))
	for _, r := range res.Rows {
		ts = append(ts, Triple{I: int(r[0].AsInt()), J: int(r[1].AsInt()), V: r[2].AsFloat()})
	}
	return FromTriples(rows, cols, ts)
}

// EigenInEngine computes the dominant eigenvalue of a stored matrix
// without the data ever leaving the engine.
func (s *Store) EigenInEngine(table string, rows, cols int) (float64, []float64, int, error) {
	m, err := s.LoadCSR(table, rows, cols)
	if err != nil {
		return 0, nil, 0, err
	}
	ev, vec, iters, err := PowerIteration(m, rows, 200, 1e-10)
	return ev, vec, iters, err
}

// EigenViaExport is the §II-G baseline: dump the matrix to an external
// file repository, re-parse it in the "external tool", compute, and
// return. bytesMoved reports the redundant copying the paper calls out.
func (s *Store) EigenViaExport(table string, rows, cols int, dir string) (ev float64, bytesMoved int, err error) {
	res, err := s.eng.Query(fmt.Sprintf("SELECT i, j, v FROM %s", table))
	if err != nil {
		return 0, 0, err
	}
	path := dir + "/" + table + "_export.csv"
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	w := bufio.NewWriter(f)
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%d,%d,%s\n", r[0].AsInt(), r[1].AsInt(), strconv.FormatFloat(r[2].AsFloat(), 'g', 17, 64))
	}
	if err := w.Flush(); err != nil {
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}

	// "External tool": read the file back and compute.
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	bytesMoved = 2 * len(data) // written out + read back
	var ts []Triple
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return 0, 0, fmt.Errorf("matrix: corrupt export line %q", line)
		}
		i, _ := strconv.Atoi(parts[0])
		j, _ := strconv.Atoi(parts[1])
		v, _ := strconv.ParseFloat(parts[2], 64)
		ts = append(ts, Triple{I: i, J: j, V: v})
	}
	m, err := FromTriples(rows, cols, ts)
	if err != nil {
		return 0, 0, err
	}
	ev, _, _, err = PowerIteration(m, rows, 200, 1e-10)
	return ev, bytesMoved, err
}
