package core

import (
	"fmt"
	"sort"
	"sync"
)

// Repository is the central business-object repository of §V: named object
// definitions (DDL plus engine wiring statements) versioned and deployable
// "from development via test to active systems" with one consistent
// procedure.
type Repository struct {
	mu      sync.Mutex
	objects map[string]*BusinessObject
}

// BusinessObject is one deployable definition.
type BusinessObject struct {
	Name    string
	Version int
	// Statements run in order at deployment (CREATE TABLE, CREATE VIEW,
	// seed INSERTs ...).
	Statements []string
	// Wire runs after the statements with the target ecosystem (engine
	// registrations that have no SQL surface: text indexes, graph views).
	Wire func(e *Ecosystem) error
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{objects: map[string]*BusinessObject{}}
}

// Define registers (or upgrades) an object definition; the version
// increments on redefinition.
func (r *Repository) Define(obj BusinessObject) *BusinessObject {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.objects[obj.Name]; ok {
		obj.Version = prev.Version + 1
	} else {
		obj.Version = 1
	}
	cp := obj
	r.objects[obj.Name] = &cp
	return &cp
}

// Get resolves a definition.
func (r *Repository) Get(name string) (*BusinessObject, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objects[name]
	return o, ok
}

// List returns object names, sorted.
func (r *Repository) List() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.objects))
	for n := range r.objects {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Deploy rolls one object out to a target ecosystem. The deployed version
// is recorded in the target's catalog metadata so administrators can audit
// landscape consistency.
func (r *Repository) Deploy(name string, target *Ecosystem) error {
	obj, ok := r.Get(name)
	if !ok {
		return fmt.Errorf("core: no business object %q", name)
	}
	for _, stmt := range obj.Statements {
		if _, err := target.Query(stmt); err != nil {
			return fmt.Errorf("core: deploying %s: %w", name, err)
		}
	}
	if obj.Wire != nil {
		if err := obj.Wire(target); err != nil {
			return fmt.Errorf("core: wiring %s: %w", name, err)
		}
	}
	target.deployed(name, obj.Version)
	return nil
}

// DeployAll rolls every object out in name order.
func (r *Repository) DeployAll(target *Ecosystem) error {
	for _, name := range r.List() {
		if err := r.Deploy(name, target); err != nil {
			return err
		}
	}
	return nil
}

// deployedVersions tracks the landscape state per ecosystem.
type deployedVersions struct {
	mu sync.Mutex
	m  map[string]int
}

var deployments sync.Map // *Ecosystem -> *deployedVersions

func (e *Ecosystem) deployed(name string, version int) {
	v, _ := deployments.LoadOrStore(e, &deployedVersions{m: map[string]int{}})
	dv := v.(*deployedVersions)
	dv.mu.Lock()
	dv.m[name] = version
	dv.mu.Unlock()
}

// DeployedVersion reports which version of an object this ecosystem runs.
func (e *Ecosystem) DeployedVersion(name string) (int, bool) {
	v, ok := deployments.Load(e)
	if !ok {
		return 0, false
	}
	dv := v.(*deployedVersions)
	dv.mu.Lock()
	defer dv.mu.Unlock()
	ver, ok := dv.m[name]
	return ver, ok
}

// LandscapeDrift compares two ecosystems' deployed versions and returns
// objects whose versions differ — the consistency check behind "seamless
// migration from development via test to active systems".
func LandscapeDrift(repo *Repository, systems ...*Ecosystem) map[string][]int {
	drift := map[string][]int{}
	for _, name := range repo.List() {
		versions := make([]int, len(systems))
		differ := false
		for i, s := range systems {
			v, _ := s.DeployedVersion(name)
			versions[i] = v
			if v != versions[0] {
				differ = true
			}
		}
		if differ {
			drift[name] = versions
		}
	}
	return drift
}
