// Package core is the ecosystem façade — the paper's actual contribution
// (§I-B, §V, §VI): "one solution for the application which logically
// consists of one execution runtime, one persistency, one infrastructure
// and one administration experience". It assembles every engine of this
// repository around a single relational entry point:
//
//   - the in-memory column store with MVCC transactions and durability,
//   - the data-processing engines of Figure 2 (text, graph/hierarchy,
//     geospatial, time series, scientific, planning, mining, documents),
//   - the application bridge and semantic aging of §III,
//   - the scale-out extension of Figure 3 and the Hadoop stack of
//     Figure 4 (HDFS, MapReduce, RDDs, SDA federation, streaming),
//   - a business-object repository with dev→test→prod lifecycle, and a
//     single administration/monitoring surface.
package core

import (
	"fmt"
	"sort"

	"repro/internal/aging"
	"repro/internal/appbridge"
	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/docstore"
	"repro/internal/extstore"
	"repro/internal/federation"
	"repro/internal/geo"
	"repro/internal/graph"
	"repro/internal/hdfs"
	"repro/internal/matrix"
	"repro/internal/mining"
	"repro/internal/planning"
	"repro/internal/soe"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/streaming"
	"repro/internal/text"
	"repro/internal/timeseries"
	"repro/internal/value"
	"repro/internal/wal"
)

// Ecosystem is one assembled data-management landscape.
type Ecosystem struct {
	Engine *sqlexec.Engine

	Text     *text.Indexer
	Graph    *graph.Views
	Geo      *geo.Indexes
	Series   *timeseries.Views
	Matrix   *matrix.Store
	Planning *planning.Engine
	Objects  *docstore.Objects
	Mining   *mining.Miner
	Bridge   *appbridge.Bridge
	Aging    *aging.Manager

	Fed     *federation.Federation
	HDFS    *hdfs.FS
	HiveSrc *federation.HiveSource // non-nil when the HDFS tier exists
	SOE     *soe.Cluster

	Repo  *Repository
	Store *wal.Store      // non-nil when durable
	Warm  *extstore.Store // page-based extended store (warm tier)

	// Obs and Tracer observe the local engine; SOE clusters additionally
	// carry their own landscape registry (SOE.Obs) and v2stats service.
	Obs    *stats.Registry
	Tracer *stats.Tracer
}

// Config shapes an ecosystem.
type Config struct {
	// DurableDir enables WAL + checkpoint persistence in this directory.
	DurableDir string
	// ReferenceCurrency for the application bridge (default EUR).
	ReferenceCurrency string
	// HDFSDataNodes > 0 attaches a simulated Hadoop tier.
	HDFSDataNodes int
	HDFSBlockSize int
	// SOE attaches a scale-out cluster when non-nil.
	SOE *soe.ClusterConfig
	// ExtStore shapes the warm tier (page size, pool budget, chunk rows);
	// zero values take the extstore defaults.
	ExtStore extstore.Options
}

// New assembles an ecosystem.
func New(cfg Config) (*Ecosystem, error) {
	var eng *sqlexec.Engine
	var store *wal.Store
	if cfg.DurableDir != "" {
		s, err := wal.OpenStore(cfg.DurableDir, wal.SyncNever)
		if err != nil {
			return nil, err
		}
		store = s
		eng = sqlexec.NewEngineWith(catalog.New(), s.Mgr)
		// Recovery rebuilds physical tables in the transaction manager;
		// re-register them with the catalog so SQL resolves them again.
		// Partition-suffixed tables (tiering, aged) come back as plain
		// tables — re-apply tiering policies after restart to re-tier.
		for _, t := range s.RecoveredTables() {
			if entry, err := eng.Cat.CreateTable(t.Name(), t.Schema()); err == nil {
				entry.Partitions[0].Table = t
			}
		}
	} else {
		eng = sqlexec.NewEngine()
	}
	if cfg.ReferenceCurrency == "" {
		cfg.ReferenceCurrency = "EUR"
	}

	obs := stats.NewRegistry()
	tracer := stats.NewTracer(128)
	eng.Obs = obs
	eng.Tracer = tracer

	e := &Ecosystem{
		Engine:   eng,
		Obs:      obs,
		Tracer:   tracer,
		Text:     text.Attach(eng),
		Graph:    graph.Attach(eng),
		Geo:      geo.Attach(eng),
		Series:   timeseries.Attach(eng),
		Matrix:   matrix.Attach(eng),
		Planning: planning.Attach(eng),
		Objects:  docstore.Attach(eng),
		Mining:   mining.Attach(eng),
		Bridge:   appbridge.Attach(eng, cfg.ReferenceCurrency),
		Aging:    aging.Attach(eng),
		Repo:     NewRepository(),
		Store:    store,
	}
	e.Fed = federation.Attach(eng)

	// The warm tier: durable ecosystems page into a file next to the WAL,
	// everything else uses an anonymous temp file.
	var warm *extstore.Store
	var err error
	if cfg.DurableDir != "" {
		warm, err = extstore.Open(cfg.DurableDir+"/extstore.pages", cfg.ExtStore)
	} else {
		warm, err = extstore.OpenTemp(cfg.ExtStore)
	}
	if err != nil {
		return nil, err
	}
	warm.SetTracer(tracer)
	e.Warm = warm
	e.Aging.Warm = warm
	registerBufferPoolView(eng, warm)

	if cfg.HDFSDataNodes > 0 {
		bs := cfg.HDFSBlockSize
		if bs <= 0 {
			bs = 1 << 16
		}
		e.HDFS = hdfs.New(cfg.HDFSDataNodes, bs, 2)
		e.HiveSrc = federation.NewHiveSource(e.HDFS)
		e.Fed.Register(e.HiveSrc)
	}
	if cfg.SOE != nil {
		e.SOE = soe.NewCluster(*cfg.SOE)
		e.Fed.Register(&federation.SOESource{Cluster: e.SOE})
		soe.RegisterClusterView(eng.SysViews(), e.SOE)
	}
	return e, nil
}

// registerBufferPoolView publishes the warm tier's buffer pool as
// sys.m_buffer_pool: one "_pool" summary row (occupancy plus the
// process-wide hit/miss/eviction/fault counters) and one row per table
// with page faults attributed to it.
func registerBufferPoolView(eng *sqlexec.Engine, warm *extstore.Store) {
	schema := columnstore.Schema{
		{Name: "scope", Kind: value.KindString},
		{Name: "budget_pages", Kind: value.KindInt},
		{Name: "resident_pages", Kind: value.KindInt},
		{Name: "chunks", Kind: value.KindInt},
		{Name: "file_pages", Kind: value.KindInt},
		{Name: "hits", Kind: value.KindInt},
		{Name: "misses", Kind: value.KindInt},
		{Name: "evictions", Kind: value.KindInt},
		{Name: "faults", Kind: value.KindInt},
		{Name: "faulted_bytes", Kind: value.KindInt},
	}
	ctr := func(name string) value.Value {
		return value.Int(stats.Default.Counter(name).Value())
	}
	eng.SysViews().Register("sys.m_buffer_pool", schema, func() ([]value.Row, error) {
		pool := warm.Pool()
		null := value.Value{}
		rows := []value.Row{{
			value.String("_pool"),
			value.Int(int64(pool.BudgetPages)),
			value.Int(int64(pool.ResidentPages)),
			value.Int(int64(pool.Chunks)),
			value.Int(warm.Pages()),
			ctr("extstore_pool_hits_total"),
			ctr("extstore_pool_misses_total"),
			ctr("extstore_pool_evictions_total"),
			ctr("extstore_page_faults_total"),
			ctr("extstore_faulted_bytes_total"),
		}}
		faults := warm.FaultsByTable()
		tables := make([]string, 0, len(faults))
		for t := range faults {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			rows = append(rows, value.Row{
				value.String(t), null, null, null, null, null, null, null,
				value.Int(faults[t]), null,
			})
		}
		return rows, nil
	})
}

// Close shuts down background activity.
func (e *Ecosystem) Close() {
	if e.SOE != nil {
		e.SOE.Shutdown()
	}
	if e.Warm != nil {
		e.Warm.Close()
	}
	if e.Store != nil {
		e.Store.Log.Close()
	}
}

// Query is the single SQL entry point spanning every engine.
func (e *Ecosystem) Query(sql string, params ...value.Value) (*sqlexec.Result, error) {
	return e.Engine.Query(sql, params...)
}

// MustQuery panics on error (examples, tests).
func (e *Ecosystem) MustQuery(sql string, params ...value.Value) *sqlexec.Result {
	return e.Engine.MustQuery(sql, params...)
}

// NewStream opens a streaming pipeline whose sinks may feed ecosystem
// tables (the ESP entry of Figure 4).
func (e *Ecosystem) NewStream(schema columnstore.Schema) *streaming.Stream {
	return streaming.New(schema)
}

// --- administration and monitoring (one experience, §I-B) ----------------

// TableStatus describes one table on the admin surface.
type TableStatus struct {
	Name       string
	Rows       int
	Partitions int
	DeltaRows  int
	Bytes      int
	Tiers      map[catalog.Tier]int // partitions per tier
}

// Status is the single monitoring snapshot across all components.
type Status struct {
	Tables        []TableStatus
	Commits       uint64
	Aborts        uint64
	SOENodes      int
	SOELogTail    uint64
	HDFSDataNodes int
	HDFSFiles     int
}

// Status collects the admin snapshot.
func (e *Ecosystem) Status() Status {
	var st Status
	ts := e.Engine.Mgr.Now()
	for _, name := range e.Engine.Cat.Tables() {
		entry, ok := e.Engine.Cat.Table(name)
		if !ok {
			continue
		}
		t := TableStatus{Name: name, Tiers: map[catalog.Tier]int{}}
		for _, p := range entry.Partitions {
			snap := p.Table.Snapshot(ts)
			t.Rows += snap.LiveRows()
			t.DeltaRows += p.Table.DeltaRows()
			t.Bytes += p.Table.Bytes()
			t.Partitions++
			t.Tiers[p.Tier]++
		}
		st.Tables = append(st.Tables, t)
	}
	st.Commits, st.Aborts = e.Engine.Mgr.Stats()
	if e.SOE != nil {
		st.SOENodes = len(e.SOE.Nodes)
		st.SOELogTail = e.SOE.Log.Tail()
	}
	if e.HDFS != nil {
		st.HDFSDataNodes = e.HDFS.LiveDataNodes()
		st.HDFSFiles = len(e.HDFS.List("/"))
	}
	return st
}

// DemoteTable pages every partition of a table out to the warm tier.
func (e *Ecosystem) DemoteTable(name string) (int, error) {
	entry, ok := e.Engine.Cat.Table(name)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", name)
	}
	return e.Warm.DemoteTable(entry, e.Engine.Mgr.MinActiveTS())
}

// PromoteTable re-hydrates every warm partition of a table into memory.
func (e *Ecosystem) PromoteTable(name string) (int, error) {
	entry, ok := e.Engine.Cat.Table(name)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", name)
	}
	n := 0
	wm := e.Engine.Mgr.MinActiveTS()
	for _, p := range entry.Partitions {
		if p.Tier == catalog.TierExtended {
			if err := e.Warm.Promote(p, wm); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// MergeAll runs a delta merge on every hot partition (housekeeping). The
// merges run through the commit pipeline so concurrent committers are
// never invalidated mid-apply.
func (e *Ecosystem) MergeAll() {
	for _, name := range e.Engine.Cat.Tables() {
		entry, ok := e.Engine.Cat.Table(name)
		if !ok {
			continue
		}
		for _, p := range entry.Partitions {
			if p.Tier == catalog.TierHot && p.Table.DeltaRows() > 0 {
				e.Engine.Mgr.MergeNow(p.Table)
			}
		}
	}
}

// AllTables returns every physical partition table keyed by its physical
// name (backup, checkpointing).
func (e *Ecosystem) AllTables() map[string]*columnstore.Table {
	tables := map[string]*columnstore.Table{}
	for _, name := range e.Engine.Cat.Tables() {
		entry, _ := e.Engine.Cat.Table(name)
		for _, p := range entry.Partitions {
			tables[p.Table.Name()] = p.Table
		}
	}
	return tables
}

// Backup writes a full consistent backup of all tables.
func (e *Ecosystem) Backup(path string) error {
	if e.Store == nil {
		return fmt.Errorf("core: backup requires a durable ecosystem")
	}
	return e.Store.Backup(path, e.AllTables())
}

// Checkpoint persists the full state and truncates the redo log.
func (e *Ecosystem) Checkpoint() error {
	if e.Store == nil {
		return fmt.Errorf("core: checkpoint requires a durable ecosystem")
	}
	return e.Store.Checkpoint(e.AllTables())
}
