package core

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/federation"
	"repro/internal/txn"
	"repro/internal/value"
)

// Dynamic tiering (Figure 1): data moves along the temperature spectrum —
// hot in-memory partitions, extended storage, and the HDFS tier — while
// staying transparently queryable through the logical table. Rows landing
// on the HDFS tier are additionally written as CSV files so the plain
// Hadoop stack (file reader, MapReduce, Hive) can consume them (§IV-C).

// TierPolicy drives TierByTemperature.
type TierPolicy struct {
	Table   string
	DateCol string
	// Rows older than ExtendedAfter move to extended storage; older than
	// HDFSAfter move to the HDFS tier. HDFSAfter must be >= ExtendedAfter.
	ExtendedAfter time.Duration
	HDFSAfter     time.Duration
	// Scan penalties charged per cold partition scan (microseconds).
	ExtendedPenalty int
	HDFSPenalty     int
}

// TierByTemperature applies a policy at time now, returning rows moved per
// tier.
func (e *Ecosystem) TierByTemperature(p TierPolicy, now time.Time) (toExtended, toHDFS int, err error) {
	entry, ok := e.Engine.Cat.Table(p.Table)
	if !ok {
		return 0, 0, fmt.Errorf("core: unknown table %q", p.Table)
	}
	di := entry.Schema.ColIndex(p.DateCol)
	if di < 0 {
		return 0, 0, fmt.Errorf("core: column %q not in %s", p.DateCol, p.Table)
	}
	if p.HDFSAfter < p.ExtendedAfter {
		return 0, 0, fmt.Errorf("core: HDFSAfter must be >= ExtendedAfter")
	}
	if p.ExtendedPenalty <= 0 {
		p.ExtendedPenalty = 100
	}
	if p.HDFSPenalty <= 0 {
		p.HDFSPenalty = 1000
	}

	ext, err := e.tierPartition(entry, catalog.TierExtended, p.ExtendedPenalty)
	if err != nil {
		return 0, 0, err
	}
	extCut := now.Add(-p.ExtendedAfter).UnixMicro()
	hdfsCut := now.Add(-p.HDFSAfter).UnixMicro()

	var hdfsPart *catalog.Partition
	if e.HDFS != nil {
		hdfsPart, err = e.tierPartition(entry, catalog.TierHDFS, p.HDFSPenalty)
		if err != nil {
			return 0, 0, err
		}
	}
	// Cold partitions carry range bounds on the date column so the
	// optimizer can prune them for recent-data queries: every row moved
	// there satisfies DateCol <= cutoff.
	widenBound(ext, p.DateCol, extCut)
	if hdfsPart != nil {
		widenBound(hdfsPart, p.DateCol, hdfsCut)
	}

	var hdfsRows []value.Row
	_, err = e.Engine.Mgr.RunInTxn(func(tx *txn.Txn) error {
		for _, part := range entry.Partitions {
			snap, err := tx.SnapshotTable(part.Table.Name())
			if err != nil {
				return err
			}
			for pos := 0; pos < snap.NumRows(); pos++ {
				if !snap.Visible(pos) {
					continue
				}
				d := snap.Get(di, pos).AsInt()
				var target *catalog.Partition
				switch {
				case hdfsPart != nil && d <= hdfsCut && part.Tier != catalog.TierHDFS:
					target = hdfsPart
				case d <= extCut && d > hdfsCut && part.Tier == catalog.TierHot:
					target = ext
				case hdfsPart == nil && d <= extCut && part.Tier == catalog.TierHot:
					target = ext
				}
				if target == nil || target == part {
					continue
				}
				row := snap.Row(pos)
				if err := tx.Delete(part.Table.Name(), pos); err != nil {
					return err
				}
				if err := tx.Insert(target.Table.Name(), row); err != nil {
					return err
				}
				if target == hdfsPart {
					hdfsRows = append(hdfsRows, row)
					toHDFS++
				} else {
					toExtended++
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}

	// Mirror HDFS-tier rows as CSV for the Hadoop-side consumers.
	if len(hdfsRows) > 0 && e.HDFS != nil {
		var buf []byte
		for _, r := range hdfsRows {
			buf = append(buf, federation.CSVLine(r)...)
			buf = append(buf, '\n')
		}
		path := fmt.Sprintf("/tiering/%s/%d.csv", p.Table, e.Engine.Mgr.Now())
		if err := e.HDFS.WriteFile(path, buf); err != nil {
			return toExtended, toHDFS, err
		}
	}
	return toExtended, toHDFS, nil
}

// widenBound records (or widens) the upper date bound of a cold partition.
func widenBound(p *catalog.Partition, dateCol string, cutoff int64) {
	hi := value.Int(cutoff + 1) // rows satisfy DateCol <= cutoff, i.e. < cutoff+1
	if p.PruneCol == dateCol && !p.Hi.IsNull() && value.Compare(p.Hi, hi) >= 0 {
		return
	}
	p.PruneCol = dateCol
	p.Lo = value.Null
	p.Hi = hi
}

// tierPartition finds or creates the table's partition on a tier.
func (e *Ecosystem) tierPartition(entry *catalog.TableEntry, tier catalog.Tier, penalty int) (*catalog.Partition, error) {
	for _, p := range entry.Partitions {
		if p.Tier == tier {
			return p, nil
		}
	}
	name := fmt.Sprintf("%s_%s", entry.Name, tier)
	p := &catalog.Partition{
		Name:            name,
		Table:           columnstore.NewTable(name, entry.Schema),
		Tier:            tier,
		ColdReadPenalty: penalty,
	}
	if err := e.Engine.Cat.AttachPartition(entry.Name, p); err != nil {
		return nil, err
	}
	e.Engine.Mgr.Register(p.Table)
	return p, nil
}

// TierCounts reports live rows per tier for a table.
func (e *Ecosystem) TierCounts(table string) (map[catalog.Tier]int, error) {
	entry, ok := e.Engine.Cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	ts := e.Engine.Mgr.Now()
	out := map[catalog.Tier]int{}
	for _, p := range entry.Partitions {
		out[p.Tier] += p.Table.Snapshot(ts).LiveRows()
	}
	return out, nil
}
