package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/soe"
	"repro/internal/value"
	"repro/internal/wal"
)

func newEco(t *testing.T, cfg Config) *Ecosystem {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestSingleEntryPointSpansEngines(t *testing.T) {
	e := newEco(t, Config{})
	// One statement touching geo + text + appbridge functions at once —
	// the Figure 2 integration through one optimizer/executor.
	e.MustQuery(`CREATE TABLE shops (id VARCHAR, lat DOUBLE, lon DOUBLE, review VARCHAR, amount DOUBLE, cur VARCHAR)`)
	e.Bridge.Currency.SetRate("USD", 0, 0.5)
	e.MustQuery(`INSERT INTO shops VALUES ('S1', 52.52, 13.40, 'great service, love it', 100, 'USD')`)
	e.MustQuery(`INSERT INTO shops VALUES ('S2', 52.53, 13.41, 'terrible and dirty', 100, 'EUR')`)
	e.MustQuery(`INSERT INTO shops VALUES ('S3', 37.56, 126.97, 'great place', 100, 'EUR')`)
	r := e.MustQuery(`SELECT id, CONVERT_CURRENCY(amount, cur, 'EUR', 1) FROM shops
		WHERE ST_WITHIN_DISTANCE(lat, lon, 52.52, 13.405, 10) AND SENTIMENT(review) > 0`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "S1" || r.Rows[0][1].F != 50 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestStatusSurface(t *testing.T) {
	e := newEco(t, Config{HDFSDataNodes: 2, SOE: &soe.ClusterConfig{Nodes: 2, Mode: soe.OLTP}})
	e.MustQuery(`CREATE TABLE t (a INT)`)
	e.MustQuery(`INSERT INTO t VALUES (1), (2)`)
	st := e.Status()
	if len(st.Tables) != 1 || st.Tables[0].Rows != 2 {
		t.Fatalf("status=%+v", st)
	}
	if st.SOENodes != 2 || st.HDFSDataNodes != 2 {
		t.Fatalf("status=%+v", st)
	}
	if st.Commits == 0 {
		t.Fatal("commit counter missing")
	}
}

func TestMergeAll(t *testing.T) {
	e := newEco(t, Config{})
	e.MustQuery(`CREATE TABLE t (a INT)`)
	for i := 0; i < 10; i++ {
		e.MustQuery(`INSERT INTO t VALUES (?)`, value.Int(int64(i)))
	}
	entry, _ := e.Engine.Cat.Table("t")
	if entry.Primary().MainRows() != 0 {
		t.Fatal("precondition")
	}
	e.MergeAll()
	if entry.Primary().MainRows() != 10 || entry.Primary().DeltaRows() != 0 {
		t.Fatalf("main=%d delta=%d", entry.Primary().MainRows(), entry.Primary().DeltaRows())
	}
}

func TestDurableEcosystemSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := New(Config{DurableDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.MustQuery(`CREATE TABLE t (a INT, b VARCHAR)`)
	e.MustQuery(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	// Checkpoint so the restart can rebuild schema + data.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.MustQuery(`INSERT INTO t VALUES (3, 'z')`) // lands in the WAL suffix
	e.Close()

	e2, err := New(Config{DurableDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// Recovered tables are fully SQL-queryable: schema, rows and clock
	// all came back from checkpoint + WAL suffix.
	r := e2.MustQuery(`SELECT COUNT(*), MAX(a) FROM t`)
	if r.Rows[0][0].I != 3 || r.Rows[0][1].I != 3 {
		t.Fatalf("recovered query=%v", r.Rows[0])
	}
	// And writable: new transactions continue on the recovered state.
	e2.MustQuery(`INSERT INTO t VALUES (4, 'w')`)
	r = e2.MustQuery(`SELECT COUNT(*) FROM t`)
	if r.Rows[0][0].I != 4 {
		t.Fatalf("post-recovery insert: %v", r.Rows[0][0])
	}
}

func TestBusinessObjectLifecycle(t *testing.T) {
	repo := NewRepository()
	repo.Define(BusinessObject{
		Name: "sales_order",
		Statements: []string{
			`CREATE TABLE so (id VARCHAR, total DOUBLE)`,
			`CREATE VIEW so_big AS SELECT id FROM so WHERE total > 100`,
		},
	})
	dev := newEco(t, Config{})
	test := newEco(t, Config{})
	if err := repo.Deploy("sales_order", dev); err != nil {
		t.Fatal(err)
	}
	if err := repo.Deploy("sales_order", test); err != nil {
		t.Fatal(err)
	}
	dev.MustQuery(`INSERT INTO so VALUES ('A', 200)`)
	r := dev.MustQuery(`SELECT COUNT(*) FROM so_big`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("view=%v", r.Rows[0][0])
	}
	if v, ok := dev.DeployedVersion("sales_order"); !ok || v != 1 {
		t.Fatalf("version=%d", v)
	}
	// Upgrade only dev: drift detected.
	repo.Define(BusinessObject{Name: "sales_order", Statements: []string{`CREATE TABLE IF NOT EXISTS so (id VARCHAR, total DOUBLE)`}})
	prod := newEco(t, Config{})
	if err := repo.Deploy("sales_order", prod); err != nil {
		t.Fatal(err)
	}
	drift := LandscapeDrift(repo, dev, test, prod)
	if len(drift) != 1 {
		t.Fatalf("drift=%v", drift)
	}
	if vs := drift["sales_order"]; vs[0] != 1 || vs[2] != 2 {
		t.Fatalf("versions=%v", vs)
	}
}

func TestDeployErrors(t *testing.T) {
	repo := NewRepository()
	e := newEco(t, Config{})
	if err := repo.Deploy("ghost", e); err == nil {
		t.Fatal("missing object accepted")
	}
	repo.Define(BusinessObject{Name: "bad", Statements: []string{"NOT SQL"}})
	if err := repo.Deploy("bad", e); err == nil {
		t.Fatal("bad statement accepted")
	}
	repo.Define(BusinessObject{Name: "badwire", Wire: func(*Ecosystem) error { return fmt.Errorf("boom") }})
	if err := repo.Deploy("badwire", e); err == nil {
		t.Fatal("wire error swallowed")
	}
}

func TestDynamicTieringMovesRowsAndStaysQueryable(t *testing.T) {
	e := newEco(t, Config{HDFSDataNodes: 3})
	e.MustQuery(`CREATE TABLE events (id INT, ts INT, note VARCHAR)`)
	now := time.Date(2015, 4, 13, 0, 0, 0, 0, time.UTC)
	age := func(d time.Duration) int64 { return now.Add(-d).UnixMicro() }
	// 3 hot (1 day), 3 warm (90 days), 3 cold (2 years).
	for i := 0; i < 9; i++ {
		var ts int64
		switch i % 3 {
		case 0:
			ts = age(24 * time.Hour)
		case 1:
			ts = age(90 * 24 * time.Hour)
		case 2:
			ts = age(2 * 365 * 24 * time.Hour)
		}
		e.MustQuery(fmt.Sprintf(`INSERT INTO events VALUES (%d, %d, 'n%d')`, i, ts, i))
	}
	toExt, toHDFS, err := e.TierByTemperature(TierPolicy{
		Table: "events", DateCol: "ts",
		ExtendedAfter:   30 * 24 * time.Hour,
		HDFSAfter:       365 * 24 * time.Hour,
		ExtendedPenalty: 1, HDFSPenalty: 1,
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if toExt != 3 || toHDFS != 3 {
		t.Fatalf("moved ext=%d hdfs=%d", toExt, toHDFS)
	}
	counts, _ := e.TierCounts("events")
	if counts[catalog.TierHot] != 3 || counts[catalog.TierExtended] != 3 || counts[catalog.TierHDFS] != 3 {
		t.Fatalf("counts=%v", counts)
	}
	// The logical table still answers over all tiers.
	r := e.MustQuery(`SELECT COUNT(*) FROM events`)
	if r.Rows[0][0].I != 9 {
		t.Fatalf("total=%v", r.Rows[0][0])
	}
	// The HDFS mirror is readable by the file API.
	files := e.HDFS.List("/tiering/events/")
	if len(files) != 1 {
		t.Fatalf("files=%v", files)
	}
	data, _ := e.HDFS.ReadFile(files[0])
	if len(data) == 0 {
		t.Fatal("empty HDFS mirror")
	}
	// Idempotent re-run.
	toExt, toHDFS, _ = e.TierByTemperature(TierPolicy{
		Table: "events", DateCol: "ts",
		ExtendedAfter: 30 * 24 * time.Hour, HDFSAfter: 365 * 24 * time.Hour,
		ExtendedPenalty: 1, HDFSPenalty: 1,
	}, now)
	if toExt != 0 || toHDFS != 0 {
		t.Fatalf("re-run moved ext=%d hdfs=%d", toExt, toHDFS)
	}
}

func TestTieringWithoutHDFSUsesExtendedOnly(t *testing.T) {
	e := newEco(t, Config{})
	e.MustQuery(`CREATE TABLE ev (id INT, ts INT)`)
	now := time.Now().UTC()
	e.MustQuery(fmt.Sprintf(`INSERT INTO ev VALUES (1, %d)`, now.Add(-1000*time.Hour).UnixMicro()))
	toExt, toHDFS, err := e.TierByTemperature(TierPolicy{
		Table: "ev", DateCol: "ts",
		ExtendedAfter: time.Hour, HDFSAfter: time.Hour,
		ExtendedPenalty: 1, HDFSPenalty: 1,
	}, now)
	if err != nil || toExt != 1 || toHDFS != 0 {
		t.Fatalf("ext=%d hdfs=%d err=%v", toExt, toHDFS, err)
	}
}

func TestBackupRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := New(Config{DurableDir: dir + "/data"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.MustQuery(`CREATE TABLE b (a INT)`)
	e.MustQuery(`INSERT INTO b VALUES (1), (2)`)
	bk := dir + "/full.backup"
	if err := e.Backup(bk); err != nil {
		t.Fatal(err)
	}
	mgr, err := wal.RestoreBackup(bk)
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := mgr.Table("b")
	if !ok || tab.Snapshot(mgr.Now()).LiveRows() != 2 {
		t.Fatal("backup round trip")
	}
	// Non-durable systems refuse backup/checkpoint.
	mem := newEco(t, Config{})
	if err := mem.Backup(bk); err == nil {
		t.Fatal("in-memory backup accepted")
	}
	if err := mem.Checkpoint(); err == nil {
		t.Fatal("in-memory checkpoint accepted")
	}
}

func TestNewStreamAndDeployAll(t *testing.T) {
	e := newEco(t, Config{})
	e.MustQuery(`CREATE TABLE evt (a INT)`)
	st := e.NewStream(e.AllTables()["evt"].Schema())
	if err := st.IntoTable(e.Engine, "evt"); err != nil {
		t.Fatal(err)
	}
	st.Push(value.Row{value.Int(7)})
	r := e.MustQuery(`SELECT COUNT(*) FROM evt`)
	if r.Rows[0][0].I != 1 {
		t.Fatal("stream sink")
	}

	repo := NewRepository()
	repo.Define(BusinessObject{Name: "a", Statements: []string{`CREATE TABLE obj_a (x INT)`}})
	repo.Define(BusinessObject{Name: "b", Statements: []string{`CREATE TABLE obj_b (x INT)`}})
	target := newEco(t, Config{})
	if err := repo.DeployAll(target); err != nil {
		t.Fatal(err)
	}
	if _, ok := target.Engine.Cat.Table("obj_a"); !ok {
		t.Fatal("obj_a missing")
	}
	if _, ok := target.Engine.Cat.Table("obj_b"); !ok {
		t.Fatal("obj_b missing")
	}
}
