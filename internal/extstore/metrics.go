package extstore

import (
	"sync/atomic"

	"repro/internal/stats"
)

// Buffer-pool gauges and counters, exported through the process registry
// and therefore visible in the Prometheus /metrics exposition.
var (
	cPoolHits      = stats.Default.Counter("extstore_pool_hits_total")
	cPoolMisses    = stats.Default.Counter("extstore_pool_misses_total")
	cPoolEvictions = stats.Default.Counter("extstore_pool_evictions_total")
	cPageFaults    = stats.Default.Counter("extstore_page_faults_total")
	cFaultedBytes  = stats.Default.Counter("extstore_faulted_bytes_total")
	cFaultNanos    = stats.Default.Counter("extstore_fault_nanos_total")
	cDemotions     = stats.Default.Counter("extstore_demotions_total")
	cPromotions    = stats.Default.Counter("extstore_promotions_total")
	gPoolResident  = stats.Default.Gauge("extstore_resident_pages")
	gPoolBudget    = stats.Default.Gauge("extstore_pool_budget_pages")
)

// Process-wide fault accounting (across all stores and pools). The
// executors snapshot these around a partition or morsel and attribute the
// delta to the operator that triggered the faults; under concurrent
// queries the attribution is approximate, the totals exact.
var (
	faultCount     int64
	faultNanos     int64
	residentglobal int64
)

// FaultCounters returns the process-wide page-fault count and the
// cumulative nanoseconds spent faulting.
func FaultCounters() (n, nanos int64) {
	return atomic.LoadInt64(&faultCount), atomic.LoadInt64(&faultNanos)
}

func globalResidentAdd(delta int) {
	gPoolResident.Set(float64(atomic.AddInt64(&residentglobal, int64(delta))))
}
