package extstore

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/value"
)

// buildTable creates a merged single-partition table with mixed kinds,
// NULLs and a known row set.
func buildTable(t testing.TB, rows int, seed int64) (*columnstore.Table, []value.Row) {
	t.Helper()
	schema := columnstore.Schema{
		{Name: "id", Kind: value.KindInt},
		{Name: "name", Kind: value.KindString},
		{Name: "score", Kind: value.KindFloat},
		{Name: "ok", Kind: value.KindBool},
	}
	tab := columnstore.NewTable("t", schema)
	rng := rand.New(rand.NewSource(seed))
	var want []value.Row
	for i := 0; i < rows; i++ {
		r := value.Row{
			value.Int(int64(i)),
			value.String(fmt.Sprintf("name%03d", rng.Intn(50))),
			value.Float(rng.NormFloat64() * 100),
			value.Bool(rng.Intn(2) == 0),
		}
		if rng.Intn(11) == 0 {
			r[1] = value.Null
		}
		if rng.Intn(13) == 0 {
			r[2] = value.Null
		}
		want = append(want, r)
	}
	tab.ApplyInsert(want, 1)
	tab.Merge(2)
	return tab, want
}

func demoted(t testing.TB, tab *columnstore.Table, opts Options) (*Store, *catalog.Partition) {
	t.Helper()
	s, err := OpenTemp(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	p := &catalog.Partition{Name: tab.Name(), Table: tab, Tier: catalog.TierHot}
	if err := s.Demote(p, 2); err != nil {
		t.Fatal(err)
	}
	return s, p
}

// TestCodecRoundTrip pages a table out with tiny chunks and reads every
// cell back through the buffer pool, comparing against the source rows.
func TestCodecRoundTrip(t *testing.T) {
	tab, want := buildTable(t, 500, 7)
	_, p := demoted(t, tab, Options{PageSize: 256, ChunkRows: 48, PoolPages: 4})
	if p.Tier != catalog.TierExtended {
		t.Fatalf("tier=%s", p.Tier)
	}
	snap := tab.Snapshot(math.MaxUint64)
	for i, row := range want {
		for c := range row {
			got := snap.Get(c, i)
			if value.Compare(got, row[c]) != 0 || got.IsNull() != row[c].IsNull() {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got, row[c])
			}
		}
	}
}

// TestCodecRoundTripProperty is the randomized version: arbitrary seeds
// and chunk geometries must round-trip bit-for-bit.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, chunkSel, rowSel uint8) bool {
		rows := 40 + int(rowSel)%200
		tab, want := buildTable(t, rows, seed)
		_, _ = demoted(t, tab, Options{PageSize: 256, ChunkRows: 16 + int(chunkSel)%64, PoolPages: 3})
		snap := tab.Snapshot(math.MaxUint64)
		for i, row := range want {
			for c := range row {
				got := snap.Get(c, i)
				if got.IsNull() != row[c].IsNull() {
					return false
				}
				if !got.IsNull() && value.Compare(got, row[c]) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolEviction scans a dataset much larger than the page budget and
// asserts clock eviction keeps residency bounded while hit/miss/eviction
// counters move.
func TestPoolEviction(t *testing.T) {
	tab, want := buildTable(t, 2000, 11)
	s, _ := demoted(t, tab, Options{PageSize: 256, ChunkRows: 64, PoolPages: 6})
	if s.Pages() < 30 {
		t.Fatalf("dataset too small: %d pages", s.Pages())
	}

	h0, m0 := poolCounters()
	snap := tab.Snapshot(math.MaxUint64)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < len(want); i += 17 {
			if got := snap.Get(0, i); got.I != int64(i) {
				t.Fatalf("row %d: got %v", i, got)
			}
		}
		ps := s.Pool()
		if ps.ResidentPages > ps.BudgetPages+4 {
			t.Fatalf("pool over budget: %d resident vs %d budget", ps.ResidentPages, ps.BudgetPages)
		}
	}
	h1, m1 := poolCounters()
	if m1 == m0 {
		t.Fatal("no pool misses — dataset cannot have fit the budget")
	}
	if h1 == h0 {
		t.Fatal("no pool hits — chunks were never re-read while resident")
	}
	if cPoolEvictions.Value() == 0 {
		t.Fatal("no evictions despite dataset >> budget")
	}

	// Shrinking the budget evicts down on the next fault.
	s.SetPoolBudget(1)
	snap.Get(0, 0)
	if ps := s.Pool(); ps.ResidentPages > 2 {
		t.Fatalf("budget shrink not honored: %d resident", ps.ResidentPages)
	}
}

func poolCounters() (hits, misses int64) {
	return cPoolHits.Value(), cPoolMisses.Value()
}

// TestFaultCountersAdvance asserts the process-wide fault accounting the
// executors diff per partition/morsel actually advances on cold reads.
func TestFaultCountersAdvance(t *testing.T) {
	tab, _ := buildTable(t, 300, 3)
	_, _ = demoted(t, tab, Options{PageSize: 256, ChunkRows: 32, PoolPages: 2})
	n0, ns0 := FaultCounters()
	snap := tab.Snapshot(math.MaxUint64)
	for i := 0; i < 300; i += 10 {
		snap.Get(1, i)
	}
	n1, ns1 := FaultCounters()
	if n1 <= n0 || ns1 < ns0 {
		t.Fatalf("fault counters did not advance: %d/%d -> %d/%d", n0, ns0, n1, ns1)
	}
}

// TestZoneMapRecordsSynopsis checks min/max/count/null-count per column.
func TestZoneMapRecordsSynopsis(t *testing.T) {
	tab, want := buildTable(t, 200, 5)
	_, p := demoted(t, tab, Options{})
	z := p.Zone
	if z == nil || len(z.Cols) != 4 {
		t.Fatalf("zone=%+v", z)
	}
	if z.Rows != tab.NumRows() || z.Merges != tab.MergeCount() {
		t.Fatalf("zone validity stamp: rows=%d/%d merges=%d/%d", z.Rows, tab.NumRows(), z.Merges, tab.MergeCount())
	}
	nulls, count := 0, 0
	var min, max value.Value = value.Null, value.Null
	for _, r := range want {
		v := r[2]
		if v.IsNull() {
			nulls++
			continue
		}
		count++
		if min.IsNull() || value.Compare(v, min) < 0 {
			min = v
		}
		if max.IsNull() || value.Compare(v, max) > 0 {
			max = v
		}
	}
	zc := z.Cols[2]
	if zc.Count != count || zc.Nulls != nulls {
		t.Fatalf("col 2 count=%d nulls=%d want %d/%d", zc.Count, zc.Nulls, count, nulls)
	}
	if value.Compare(zc.Min, min) != 0 || value.Compare(zc.Max, max) != 0 {
		t.Fatalf("col 2 min/max %v/%v want %v/%v", zc.Min, zc.Max, min, max)
	}
}

// TestDemoteIdempotentAndRedemote checks repeated demotes are cheap and a
// delta arriving after demotion re-demotes cleanly.
func TestDemoteIdempotentAndRedemote(t *testing.T) {
	tab, _ := buildTable(t, 100, 9)
	s, p := demoted(t, tab, Options{PageSize: 512, ChunkRows: 32})
	pages := s.Pages()
	if err := s.Demote(p, 2); err != nil {
		t.Fatal(err)
	}
	if s.Pages() != pages {
		t.Fatalf("idempotent demote wrote pages: %d -> %d", pages, s.Pages())
	}
	tab.ApplyInsert([]value.Row{{value.Int(999), value.String("x"), value.Float(1), value.Bool(true)}}, 2)
	if err := s.Demote(p, 2); err != nil {
		t.Fatal(err)
	}
	if s.Pages() <= pages {
		t.Fatal("re-demote after delta wrote nothing")
	}
	if p.Tier != catalog.TierExtended {
		t.Fatalf("tier=%s", p.Tier)
	}
	snap := tab.Snapshot(math.MaxUint64)
	if got := snap.Get(0, 100); got.I != 999 {
		t.Fatalf("re-demoted delta row: %v", got)
	}
}
