// Package extstore is the warm tier of the data-temperature spectrum
// (Figure 1, §III): a page-based on-disk extended store in the spirit of
// SAP IQ-style dynamic tiering. Demoted partitions keep their existing
// dict/RLE/bit-packed encodings, serialized chunk by chunk into fixed-size
// pages of one store file; every read faults the containing chunk through
// a shared buffer pool with clock eviction and a configurable page budget,
// so the dataset can exceed memory by an order of magnitude while queries
// stay correct.
package extstore

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/stats"
)

// DefaultPageSize is the on-disk page granularity.
const DefaultPageSize = 8192

// DefaultPoolPages is the default buffer-pool budget.
const DefaultPoolPages = 1024

// DefaultChunkRows is how many rows of one column a chunk covers. Chunks
// are the fault granularity: small enough that point reads do not drag a
// whole column in, large enough that the encodings stay effective.
const DefaultChunkRows = 2048

// Options configures a store.
type Options struct {
	PageSize  int // bytes per page; 0 = DefaultPageSize
	PoolPages int // buffer-pool budget in pages; 0 = DefaultPoolPages
	ChunkRows int // rows per column chunk; 0 = DefaultChunkRows
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PoolPages <= 0 {
		o.PoolPages = DefaultPoolPages
	}
	if o.ChunkRows <= 0 {
		o.ChunkRows = DefaultChunkRows
	}
	return o
}

// Store is one extended-store file plus the buffer pool all reads go
// through. Pages are allocated append-only; chunks never move once
// written (re-demoting a table writes fresh chunks and orphans the old
// ones — see DESIGN §9 on compaction).
type Store struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	pageSize  int
	chunkRows int
	pages     int64 // allocated pages
	pool      *pool
	tracer    *stats.Tracer
	closed    bool

	// hooked tracks tables whose OnMerge re-hydration hook is installed,
	// so repeated demote/promote cycles register it only once; warm marks
	// tables currently paged out; parts remembers every catalog partition
	// wrapper over a table so re-hydration can clear all tier tags.
	hooked map[*columnstore.Table]bool
	warm   map[*columnstore.Table]bool
	parts  map[*columnstore.Table][]*catalog.Partition
	// perTable accounting for the \tiers surface.
	faultsByTable map[string]int64
}

// Open creates (truncating) the store file at path.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("extstore: %w", err)
	}
	return newStore(f, path, opts), nil
}

// OpenTemp creates a store over an anonymous temp file (unlinked
// immediately, so it vanishes when the store closes or the process
// exits). This is the default backing for simulations and tests.
func OpenTemp(opts Options) (*Store, error) {
	f, err := os.CreateTemp("", "extstore-*.pages")
	if err != nil {
		return nil, fmt.Errorf("extstore: %w", err)
	}
	path := f.Name()
	os.Remove(path) // keep the fd, drop the directory entry
	return newStore(f, path, opts), nil
}

func newStore(f *os.File, path string, opts Options) *Store {
	opts = opts.withDefaults()
	s := &Store{
		f:             f,
		path:          path,
		pageSize:      opts.PageSize,
		chunkRows:     opts.ChunkRows,
		hooked:        make(map[*columnstore.Table]bool),
		warm:          make(map[*columnstore.Table]bool),
		parts:         make(map[*columnstore.Table][]*catalog.Partition),
		faultsByTable: make(map[string]int64),
	}
	s.pool = newPool(opts.PoolPages)
	gPoolBudget.Set(float64(opts.PoolPages))
	return s
}

// Close releases the pool and the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.pool.drop()
	return s.f.Close()
}

// SetTracer attaches a span tracer; page faults then emit "page_fault"
// spans so EXPLAIN ANALYZE and /traces can attribute cold-read time.
func (s *Store) SetTracer(t *stats.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// PageSize returns the page granularity in bytes.
func (s *Store) PageSize() int { return s.pageSize }

func (s *Store) tracerRef() *stats.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

func (s *Store) countFault(table string) {
	s.mu.Lock()
	s.faultsByTable[table]++
	s.mu.Unlock()
}

// Pages returns the number of allocated pages.
func (s *Store) Pages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// SetPoolBudget changes the buffer-pool page budget; resident chunks
// beyond the new budget are evicted on the next fault.
func (s *Store) SetPoolBudget(pages int) {
	if pages < 1 {
		pages = 1
	}
	s.pool.setBudget(pages)
	gPoolBudget.Set(float64(pages))
}

// PoolStats is the buffer-pool occupancy summary for the shell surface.
type PoolStats struct {
	BudgetPages   int
	ResidentPages int
	Chunks        int
}

// Pool returns the current buffer-pool occupancy.
func (s *Store) Pool() PoolStats { return s.pool.statsView() }

// FaultsByTable returns per-table page-fault counts since open.
func (s *Store) FaultsByTable() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.faultsByTable))
	for k, v := range s.faultsByTable {
		out[k] = v
	}
	return out
}

// writeChunk appends enc to the file page-aligned and returns the chunk
// location.
func (s *Store) writeChunk(enc []byte) (chunkLoc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return chunkLoc{}, fmt.Errorf("extstore: store closed")
	}
	npages := (len(enc) + s.pageSize - 1) / s.pageSize
	if npages == 0 {
		npages = 1
	}
	loc := chunkLoc{page: s.pages, npages: npages, length: len(enc)}
	if _, err := s.f.WriteAt(enc, loc.page*int64(s.pageSize)); err != nil {
		return chunkLoc{}, fmt.Errorf("extstore: write chunk: %w", err)
	}
	s.pages += int64(npages)
	return loc, nil
}

// readChunk reads a chunk's raw bytes back from disk.
func (s *Store) readChunk(loc chunkLoc) ([]byte, error) {
	buf := make([]byte, loc.length)
	if _, err := s.f.ReadAt(buf, loc.page*int64(s.pageSize)); err != nil {
		return nil, fmt.Errorf("extstore: read chunk at page %d: %w", loc.page, err)
	}
	return buf, nil
}
