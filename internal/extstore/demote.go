// Demote/Promote: the tier transitions driven by the aging policy. Demote
// merges a partition's delta, serializes every column into extended-store
// chunks, records the zone-map synopsis on the catalog partition and swaps
// paged columns into the table. Promote is a merge: the delta→main merge
// always rebuilds hot encodings, so merging a warm table re-hydrates it —
// an OnMerge hook keeps the catalog tier tag honest when merges happen
// behind the store's back (MERGE DELTA OF a demoted table).
package extstore

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/value"
)

// Demote serializes partition p to the warm tier: delta merged, columns
// re-encoded into pages, zone map recorded, catalog tier flipped to
// extended. Safe to call on an already-warm partition (re-demotes any
// rows that arrived since; a no-op when nothing changed). Demotion is a
// policy action, not a query-path one: callers (the aging manager, tests)
// run it while no concurrent merge of the same table is in flight.
func (s *Store) Demote(p *catalog.Partition, minActiveTS uint64) error {
	t := p.Table
	if s.isWarm(t) && t.DeltaRows() == 0 {
		return nil // already fully paged out and unchanged
	}
	// Fold the delta (and any prior paged main — merge reads through Get,
	// faulting as needed) into fresh hot encodings first, so the chunks
	// below serialize one flat main store.
	t.Merge(minActiveTS)
	snap := t.Snapshot(math.MaxUint64)
	rows := snap.MainRows()
	schema := snap.Schema()

	zone := columnstore.BuildZoneMap(snap)
	zone.Merges = t.MergeCount()

	cols := make([]columnstore.MainColumn, len(schema))
	for c := range schema {
		pc, err := s.pageColumn(snap, c, rows, t.Name())
		if err != nil {
			return err
		}
		cols[c] = pc
	}
	if err := t.ReplaceMain(cols); err != nil {
		return err
	}
	s.installHook(t, p)
	s.markWarm(t, true)
	p.Tier = catalog.TierExtended
	p.Zone = zone
	cDemotions.Inc()
	return nil
}

// Promote re-hydrates partition p to the hot tier. The delta→main merge
// rebuilds in-memory encodings from the paged columns (faulting every
// chunk once); the installed hook flips the catalog tier back.
func (s *Store) Promote(p *catalog.Partition, minActiveTS uint64) error {
	if p.Tier != catalog.TierExtended {
		return nil
	}
	p.Table.Merge(minActiveTS)
	p.Tier = catalog.TierHot
	p.Zone = nil
	cPromotions.Inc()
	return nil
}

// DemoteTable demotes every partition of a catalog entry, returning how
// many moved.
func (s *Store) DemoteTable(e *catalog.TableEntry, minActiveTS uint64) (int, error) {
	n := 0
	for _, p := range e.Partitions {
		if err := s.Demote(p, minActiveTS); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// pageColumn encodes one column into chunks and returns the paged column
// wrapper matching the schema kind's capabilities.
func (s *Store) pageColumn(snap *columnstore.Snapshot, col, rows int, table string) (columnstore.MainColumn, error) {
	kind := snap.Schema()[col].Kind
	base := PagedColumn{store: s, table: table, kind: kind, n: rows}
	boxed := false
	for lo := 0; lo < rows; lo += s.chunkRows {
		hi := lo + s.chunkRows
		if hi > rows {
			hi = rows
		}
		enc := encodeChunk(snap, col, lo, hi, kind)
		if enc[0] == encBoxed {
			boxed = true
		}
		loc, err := s.writeChunk(enc)
		if err != nil {
			return nil, fmt.Errorf("extstore: demote %s column %d: %w", table, col, err)
		}
		base.chunk = append(base.chunk, chunkMeta{rowLo: lo, rowHi: hi, loc: loc})
	}
	if boxed {
		return &PagedValues{base}, nil
	}
	switch kind {
	case value.KindString:
		return &PagedStrings{base}, nil
	case value.KindFloat:
		return &PagedFloats{base}, nil
	default:
		return &PagedInts{base}, nil
	}
}

// installHook registers the re-hydration hook once per table: any merge of
// a demoted table rebuilds hot columns, so the catalog tier tags and zone
// maps of every partition wrapper over it must be cleared when that
// happens.
func (s *Store) installHook(t *columnstore.Table, p *catalog.Partition) {
	s.mu.Lock()
	found := false
	for _, q := range s.parts[t] {
		if q == p {
			found = true
			break
		}
	}
	if !found {
		s.parts[t] = append(s.parts[t], p)
	}
	already := s.hooked[t]
	s.hooked[t] = true
	s.mu.Unlock()
	if already {
		return
	}
	t.OnMerge(func([]int) { s.onRehydrate(t) })
}

// onRehydrate runs after any merge of a demoted table: the merge already
// rebuilt hot columns, so only the metadata needs to catch up.
func (s *Store) onRehydrate(t *columnstore.Table) {
	s.mu.Lock()
	s.warm[t] = false
	ps := append([]*catalog.Partition(nil), s.parts[t]...)
	s.mu.Unlock()
	for _, p := range ps {
		p.Tier = catalog.TierHot
		p.Zone = nil
	}
}

func (s *Store) isWarm(t *columnstore.Table) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warm[t]
}

func (s *Store) markWarm(t *columnstore.Table, warm bool) {
	s.mu.Lock()
	s.warm[t] = warm
	s.mu.Unlock()
}
