// Paged warm columns: MainColumn implementations whose data lives in
// extended-store pages. Point reads and batch kernels fault the covering
// chunk through the shared buffer pool, run the regular hot-column code on
// the decoded fragment, and translate chunk-local positions back to table
// positions. The executors see only the capability interfaces, so a warm
// partition scans exactly like a hot one — just with faults.
package extstore

import (
	"fmt"
	"sort"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// chunkMeta is one chunk's location and row coverage.
type chunkMeta struct {
	rowLo, rowHi int // table-local rows [rowLo, rowHi)
	loc          chunkLoc
}

// PagedColumn is the generic warm column: resident metadata only, data
// faulted per chunk.
type PagedColumn struct {
	store *Store
	table string
	kind  value.Kind
	n     int
	chunk []chunkMeta
}

// Kind returns the logical kind.
func (c *PagedColumn) Kind() value.Kind { return c.kind }

// Len returns the row count.
func (c *PagedColumn) Len() int { return c.n }

// Bytes returns the resident footprint: chunk metadata only — the point
// of the warm tier is that the payload does not count against memory.
func (c *PagedColumn) Bytes() int { return 64 + len(c.chunk)*40 }

// Pages returns the on-disk page count of the column.
func (c *PagedColumn) Pages() int64 {
	var n int64
	for _, ch := range c.chunk {
		n += int64(ch.loc.npages)
	}
	return n
}

// ResidentPages counts this column's pages currently in the buffer pool
// (admin surfaces: hanashell \tiers).
func (c *PagedColumn) ResidentPages() int {
	n := 0
	for _, ch := range c.chunk {
		if c.store.pool.isResident(ch.loc.page) {
			n += ch.loc.npages
		}
	}
	return n
}

// chunkAt returns the index of the chunk covering row i.
func (c *PagedColumn) chunkAt(i int) int {
	return sort.Search(len(c.chunk), func(k int) bool { return c.chunk[k].rowHi > i })
}

// fault pins and returns the decoded fragment of chunk k. Callers must
// release the frame. Faulting is the only read path — all pages go
// through the pool.
func (c *PagedColumn) fault(k int) (*frame, fragment) {
	ch := c.chunk[k]
	f, faulted, err := c.store.pool.acquire(ch.loc, func() (fragment, error) {
		if tr := c.store.tracerRef(); tr != nil {
			sp := tr.Start("page_fault", "table="+c.table, fmt.Sprintf("pages=%d", ch.loc.npages))
			defer sp.Finish()
		}
		raw, err := c.store.readChunk(ch.loc)
		if err != nil {
			return nil, err
		}
		return decodeChunk(raw)
	})
	if err != nil {
		// A local store file going bad mid-query has no recovery path in
		// the simulation; fail loudly rather than return wrong results.
		panic(fmt.Sprintf("extstore: fault %s chunk %d: %v", c.table, k, err))
	}
	if faulted {
		c.store.countFault(c.table)
	}
	return f, f.col
}

func (c *PagedColumn) release(f *frame) { c.store.pool.release(f) }

// Get returns row i as a Value, faulting its chunk.
func (c *PagedColumn) Get(i int) value.Value {
	k := c.chunkAt(i)
	f, frag := c.fault(k)
	v := frag.Get(i - c.chunk[k].rowLo)
	c.release(f)
	return v
}

// IsNull reports whether row i is NULL, faulting its chunk.
func (c *PagedColumn) IsNull(i int) bool {
	k := c.chunkAt(i)
	f, frag := c.fault(k)
	null := frag.IsNull(i - c.chunk[k].rowLo)
	c.release(f)
	return null
}

// filterChunks runs fn over every chunk overlapping [lo, hi) with
// chunk-local bounds, translating appended positions by the chunk base.
func (c *PagedColumn) filterChunks(lo, hi int, sel []int, fn func(frag fragment, clo, chi int, out []int) []int) []int {
	if lo >= hi || c.n == 0 {
		return sel
	}
	var local []int
	for k := c.chunkAt(lo); k < len(c.chunk) && c.chunk[k].rowLo < hi; k++ {
		ch := c.chunk[k]
		clo, chi := lo, hi
		if clo < ch.rowLo {
			clo = ch.rowLo
		}
		if chi > ch.rowHi {
			chi = ch.rowHi
		}
		f, frag := c.fault(k)
		local = fn(frag, clo-ch.rowLo, chi-ch.rowLo, local[:0])
		for _, p := range local {
			sel = append(sel, p+ch.rowLo)
		}
		c.release(f)
	}
	return sel
}

// FoldRuns implements the run-folding capability chunk by chunk: one
// fault per chunk, forwarding to run-length fragments and degrading to
// unit runs on fragments without run structure. Positions translate by
// the chunk base, so the executor folds warm columns exactly like hot
// ones.
func (c *PagedColumn) FoldRuns(lo, hi int, fn func(v value.Value, start, end int)) {
	if lo >= hi || c.n == 0 {
		return
	}
	for k := c.chunkAt(lo); k < len(c.chunk) && c.chunk[k].rowLo < hi; k++ {
		ch := c.chunk[k]
		clo, chi := lo, hi
		if clo < ch.rowLo {
			clo = ch.rowLo
		}
		if chi > ch.rowHi {
			chi = ch.rowHi
		}
		f, frag := c.fault(k)
		if rf, ok := frag.(columnstore.RunFolder); ok {
			rf.FoldRuns(clo-ch.rowLo, chi-ch.rowLo, func(v value.Value, start, end int) {
				fn(v, start+ch.rowLo, end+ch.rowLo)
			})
		} else {
			for i := clo; i < chi; i++ {
				fn(frag.Get(i-ch.rowLo), i, i+1)
			}
		}
		c.release(f)
	}
}

// PagedInts is a warm integer column (Int/Bool/Time): chunks decode to
// frame-of-reference IntColumns, so the integer kernels and the raw
// accessor work on faulted fragments.
type PagedInts struct{ PagedColumn }

// Int64 returns row i as a raw int64 (undefined for NULL rows).
func (c *PagedInts) Int64(i int) int64 {
	k := c.chunkAt(i)
	f, frag := c.fault(k)
	v := frag.(columnstore.IntAccessor).Int64(i - c.chunk[k].rowLo)
	c.release(f)
	return v
}

// FilterInts runs the integer comparison kernel chunk by chunk.
func (c *PagedInts) FilterInts(lo, hi int, op columnstore.CmpOp, k int64, sel []int) []int {
	return c.filterChunks(lo, hi, sel, func(frag fragment, clo, chi int, out []int) []int {
		return frag.(columnstore.IntFilterer).FilterInts(clo, chi, op, k, out)
	})
}

// PagedFloats is a warm float column; chunks decode to flat FloatColumns.
type PagedFloats struct{ PagedColumn }

// Float64 returns row i as a raw float64 (undefined for NULL rows).
func (c *PagedFloats) Float64(i int) float64 {
	k := c.chunkAt(i)
	f, frag := c.fault(k)
	v := frag.(columnstore.FloatAccessor).Float64(i - c.chunk[k].rowLo)
	c.release(f)
	return v
}

// FilterFloats runs the float comparison kernel chunk by chunk.
func (c *PagedFloats) FilterFloats(lo, hi int, op columnstore.CmpOp, k float64, sel []int) []int {
	return c.filterChunks(lo, hi, sel, func(frag fragment, clo, chi int, out []int) []int {
		return frag.(columnstore.FloatFilterer).FilterFloats(clo, chi, op, k, out)
	})
}

// PagedStrings is a warm string column; chunks decode to per-chunk
// dictionary columns. It deliberately does not implement DictIndexed:
// there is no table-wide value-ID space across chunk dictionaries.
type PagedStrings struct{ PagedColumn }

// FilterString runs the dictionary-interval kernel chunk by chunk.
func (c *PagedStrings) FilterString(lo, hi int, op columnstore.CmpOp, lit string, sel []int) []int {
	return c.filterChunks(lo, hi, sel, func(frag fragment, clo, chi int, out []int) []int {
		return frag.(columnstore.StringFilterer).FilterString(clo, chi, op, lit, out)
	})
}

// CodeKeys implements the KeyCoder capability over per-chunk
// dictionaries: positions (ascending) group by covering chunk, each
// chunk faults once and forwards to its fragment's code remap, so a
// distinct value decodes once per chunk rather than once per row.
func (c *PagedStrings) CodeKeys(sel []int, intern func(string) int64, nullKey int64, out []int64) []int64 {
	for i := 0; i < len(sel); {
		k := c.chunkAt(sel[i])
		ch := c.chunk[k]
		j := i + 1
		for j < len(sel) && sel[j] < ch.rowHi {
			j++
		}
		f, frag := c.fault(k)
		if kc, ok := frag.(columnstore.KeyCoder); ok {
			local := make([]int, 0, j-i)
			for _, pos := range sel[i:j] {
				local = append(local, pos-ch.rowLo)
			}
			out = kc.CodeKeys(local, intern, nullKey, out)
		} else {
			for _, pos := range sel[i:j] {
				if v := frag.Get(pos - ch.rowLo); v.IsNull() {
					out = append(out, nullKey)
				} else {
					out = append(out, intern(v.S))
				}
			}
		}
		c.release(f)
		i = j
	}
	return out
}

// PagedValues is the boxed fallback for mixed-kind columns; scans decode
// and compare boxed values per chunk.
type PagedValues struct{ PagedColumn }

// FilterValues compares boxed values chunk by chunk. NULL rows never
// match.
func (c *PagedValues) FilterValues(lo, hi int, op columnstore.CmpOp, lit value.Value, sel []int) []int {
	return c.filterChunks(lo, hi, sel, func(frag fragment, clo, chi int, out []int) []int {
		for i := clo; i < chi; i++ {
			if v := frag.Get(i); !v.IsNull() && op.MatchOrd(value.Compare(v, lit)) {
				out = append(out, i)
			}
		}
		return out
	})
}
