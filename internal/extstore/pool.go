package extstore

import (
	"sync"
	"sync/atomic"
	"time"
)

// chunkLoc addresses one chunk inside a store file.
type chunkLoc struct {
	page   int64 // first page
	npages int
	length int // payload bytes (the tail of the last page is padding)
}

// frame is one resident, decoded chunk. pins guards it against eviction
// while a reader holds it; ref is the clock-hand second-chance bit.
type frame struct {
	loc   chunkLoc
	col   fragment
	pages int
	pins  int
	ref   bool
}

// pool is the shared buffer pool: decoded chunks cached up to a page
// budget, clock eviction skipping pinned frames. All reads from the
// extended store go through acquire.
type pool struct {
	mu       sync.Mutex
	budget   int
	resident int
	frames   map[int64]*frame // keyed by first page (unique per store)
	ring     []int64          // clock order
	hand     int
}

func newPool(budget int) *pool {
	return &pool{budget: budget, frames: make(map[int64]*frame)}
}

func (p *pool) setBudget(pages int) {
	p.mu.Lock()
	p.budget = pages
	p.evictLocked(0)
	p.mu.Unlock()
}

// acquire returns the decoded chunk at loc, faulting it via decode on a
// miss. The returned frame is pinned; callers must release it. faulted
// reports whether a disk read happened.
func (p *pool) acquire(loc chunkLoc, decode func() (fragment, error)) (f *frame, faulted bool, err error) {
	p.mu.Lock()
	if f, ok := p.frames[loc.page]; ok {
		f.pins++
		f.ref = true
		p.mu.Unlock()
		cPoolHits.Inc()
		return f, false, nil
	}
	// Miss: make room, then fault while holding the pool lock — the lock
	// doubles as the single-flight guard so concurrent readers of one
	// chunk do not decode it twice.
	p.evictLocked(loc.npages)
	start := time.Now()
	col, err := decode()
	if err != nil {
		p.mu.Unlock()
		return nil, false, err
	}
	f = &frame{loc: loc, col: col, pages: loc.npages, pins: 1, ref: true}
	p.frames[loc.page] = f
	p.ring = append(p.ring, loc.page)
	p.resident += f.pages
	p.mu.Unlock()
	globalResidentAdd(f.pages)

	ns := time.Since(start).Nanoseconds()
	cPoolMisses.Inc()
	cPageFaults.Inc()
	cFaultedBytes.Add(int64(loc.length))
	cFaultNanos.Add(ns)
	atomic.AddInt64(&faultCount, 1)
	atomic.AddInt64(&faultNanos, ns)
	return f, true, nil
}

func (p *pool) release(f *frame) {
	p.mu.Lock()
	f.pins--
	p.mu.Unlock()
}

// evictLocked walks the clock hand until need pages fit in the budget.
// Pinned frames are skipped; frames with the reference bit get a second
// chance. If everything is pinned the pool runs over budget rather than
// deadlocking.
func (p *pool) evictLocked(need int) {
	passes := 0
	for p.resident+need > p.budget && len(p.ring) > 0 && passes < 2*len(p.ring) {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		key := p.ring[p.hand]
		f := p.frames[key]
		switch {
		case f.pins > 0:
			p.hand++
		case f.ref:
			f.ref = false
			p.hand++
		default:
			delete(p.frames, key)
			p.ring = append(p.ring[:p.hand], p.ring[p.hand+1:]...)
			p.resident -= f.pages
			globalResidentAdd(-f.pages)
			cPoolEvictions.Inc()
		}
		passes++
	}
}

func (p *pool) drop() {
	p.mu.Lock()
	resident := p.resident
	p.frames = make(map[int64]*frame)
	p.ring = nil
	p.resident = 0
	p.hand = 0
	p.mu.Unlock()
	globalResidentAdd(-resident)
}

func (p *pool) isResident(page int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[page]
	return ok
}

func (p *pool) statsView() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{BudgetPages: p.budget, ResidentPages: p.resident, Chunks: len(p.frames)}
}
