// Chunk codec: one chunk is the rows [lo, hi) of one column, re-encoded
// with the column store's existing physical formats (per-chunk sorted
// dictionary for strings, frame-of-reference bit packing for integers,
// flat floats) and serialized into fixed-size pages. Decoding yields a
// regular hot MainColumn over the chunk's local rows, so the batch filter
// kernels run unchanged on faulted data.
package extstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// fragment is a decoded chunk: a hot column over the chunk-local rows.
type fragment = columnstore.MainColumn

// Chunk encoding tags.
const (
	encInt   byte = 0 // frame-of-reference bit-packed int64 (Int/Bool/Time)
	encFloat byte = 1 // flat float64
	encDict  byte = 2 // per-chunk sorted dictionary + bit-packed refs
	encBoxed byte = 3 // boxed values, for mixed or all-NULL chunks
	encRLE   byte = 4 // run-length runs of int64 (NULL-free runny chunks)
)

// encodeChunk serializes rows [lo, hi) of column col of snapshot src.
func encodeChunk(src *columnstore.Snapshot, col, lo, hi int, kind value.Kind) []byte {
	n := hi - lo
	var buf bytes.Buffer
	switch kind {
	case value.KindString:
		vals := make([]string, n)
		var nulls *columnstore.Bitset
		ok := true
		for i := 0; i < n && ok; i++ {
			v := src.Get(col, lo+i)
			switch {
			case v.IsNull():
				if nulls == nil {
					nulls = columnstore.NewBitset(n)
				}
				nulls.Set(i)
			case v.K == value.KindString:
				vals[i] = v.S
			default:
				ok = false
			}
		}
		if ok {
			dict := columnstore.BuildDictionary(vals)
			refs := make([]uint64, n)
			for i, s := range vals {
				if nulls != nil && nulls.Get(i) {
					continue
				}
				id, _ := dict.Lookup(s)
				refs[i] = uint64(id)
			}
			buf.WriteByte(encDict)
			writeUint32(&buf, uint32(n))
			writeUint32(&buf, uint32(dict.Len()))
			for id := 0; id < dict.Len(); id++ {
				writeString(&buf, dict.Value(id))
			}
			writePacked(&buf, columnstore.PackUints(refs))
			writeNulls(&buf, nulls)
			return buf.Bytes()
		}
	case value.KindFloat:
		vals := make([]float64, n)
		var nulls *columnstore.Bitset
		ok := true
		for i := 0; i < n && ok; i++ {
			v := src.Get(col, lo+i)
			switch {
			case v.IsNull():
				if nulls == nil {
					nulls = columnstore.NewBitset(n)
				}
				nulls.Set(i)
			case v.K == value.KindFloat:
				vals[i] = v.F
			default:
				ok = false
			}
		}
		if ok {
			buf.WriteByte(encFloat)
			writeUint32(&buf, uint32(n))
			for _, f := range vals {
				writeUint64(&buf, math.Float64bits(f))
			}
			writeNulls(&buf, nulls)
			return buf.Bytes()
		}
	case value.KindInt, value.KindBool, value.KindTime:
		vals := make([]int64, n)
		var nulls *columnstore.Bitset
		ok := true
		for i := 0; i < n && ok; i++ {
			v := src.Get(col, lo+i)
			switch {
			case v.IsNull():
				if nulls == nil {
					nulls = columnstore.NewBitset(n)
				}
				nulls.Set(i)
			case v.K == kind:
				vals[i] = v.I
			default:
				ok = false
			}
		}
		if ok {
			// Keep runny NULL-free chunks run-length encoded (same
			// heuristic as the hot merge), so warm columns participate in
			// run-folding aggregation after demotion instead of silently
			// degrading to frame-of-reference.
			if nulls == nil && n > 0 {
				runs := 1
				for i := 1; i < n; i++ {
					if vals[i] != vals[i-1] {
						runs++
					}
				}
				if runs*8 < n {
					buf.WriteByte(encRLE)
					buf.WriteByte(byte(kind))
					writeUint32(&buf, uint32(n))
					writeUint32(&buf, uint32(runs))
					for i := 0; i < n; {
						j := i + 1
						for j < n && vals[j] == vals[i] {
							j++
						}
						writeUint32(&buf, uint32(j))
						writeUint64(&buf, uint64(vals[i]))
						i = j
					}
					return buf.Bytes()
				}
			}
			ic := columnstore.NewIntColumn(vals, nulls, kind)
			buf.WriteByte(encInt)
			buf.WriteByte(byte(kind))
			writeUint32(&buf, uint32(n))
			writeUint64(&buf, uint64(ic.Base))
			writePacked(&buf, ic.Refs)
			writeNulls(&buf, nulls)
			return buf.Bytes()
		}
	}
	// Mixed-kind or untyped chunk: box the values verbatim.
	buf.Reset()
	buf.WriteByte(encBoxed)
	buf.WriteByte(byte(kind))
	writeUint32(&buf, uint32(n))
	for i := 0; i < n; i++ {
		writeValue(&buf, src.Get(col, lo+i))
	}
	return buf.Bytes()
}

// decodeChunk rebuilds the hot column a chunk was encoded from.
func decodeChunk(raw []byte) (fragment, error) {
	r := &reader{buf: raw}
	switch tag := r.byte(); tag {
	case encInt:
		kind := value.Kind(r.byte())
		n := int(r.uint32())
		base := int64(r.uint64())
		refs := r.packed(n)
		nulls := r.nulls(n)
		if r.err != nil {
			return nil, r.err
		}
		return columnstore.NewIntColumnFromParts(base, refs, nulls, kind), nil
	case encFloat:
		n := int(r.uint32())
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Float64frombits(r.uint64())
		}
		nulls := r.nulls(n)
		if r.err != nil {
			return nil, r.err
		}
		return &columnstore.FloatColumn{Vals: vals, Nulls: nulls}, nil
	case encDict:
		n := int(r.uint32())
		dlen := int(r.uint32())
		vals := make([]string, dlen)
		for i := range vals {
			vals[i] = r.string()
		}
		refs := r.packed(n)
		nulls := r.nulls(n)
		if r.err != nil {
			return nil, r.err
		}
		return &columnstore.DictColumn{Dict: columnstore.NewDictionary(vals), Refs: refs, Nulls: nulls}, nil
	case encRLE:
		kind := value.Kind(r.byte())
		n := int(r.uint32())
		runs := int(r.uint32())
		ends := make([]int, runs)
		vals := make([]value.Value, runs)
		for i := 0; i < runs; i++ {
			ends[i] = int(r.uint32())
			vals[i] = value.Value{K: kind, I: int64(r.uint64())}
		}
		if r.err != nil {
			return nil, r.err
		}
		return columnstore.NewRLEColumnFromParts(ends, vals, n), nil
	case encBoxed:
		kind := value.Kind(r.byte())
		n := int(r.uint32())
		vals := make([]value.Value, n)
		for i := range vals {
			vals[i] = r.value()
		}
		if r.err != nil {
			return nil, r.err
		}
		return &boxedColumn{vals: vals, kind: kind}, nil
	default:
		return nil, fmt.Errorf("extstore: unknown chunk encoding %d", tag)
	}
}

// boxedColumn is the decoded form of a boxed chunk.
type boxedColumn struct {
	vals []value.Value
	kind value.Kind
}

func (c *boxedColumn) Kind() value.Kind      { return c.kind }
func (c *boxedColumn) Len() int              { return len(c.vals) }
func (c *boxedColumn) Get(i int) value.Value { return c.vals[i] }
func (c *boxedColumn) IsNull(i int) bool     { return c.vals[i].IsNull() }
func (c *boxedColumn) Bytes() int {
	n := 0
	for _, v := range c.vals {
		n += 24 + len(v.S)
	}
	return n
}

// --- primitive writers/readers ---------------------------------------------

func writeUint32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func writeUint64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

func writeString(b *bytes.Buffer, s string) {
	writeUint32(b, uint32(len(s)))
	b.WriteString(s)
}

func writePacked(b *bytes.Buffer, p *columnstore.BitPacked) {
	b.WriteByte(byte(p.Width()))
	words := p.Words()
	writeUint32(b, uint32(len(words)))
	for _, w := range words {
		writeUint64(b, w)
	}
}

func writeNulls(b *bytes.Buffer, nulls *columnstore.Bitset) {
	if nulls == nil {
		b.WriteByte(0)
		return
	}
	b.WriteByte(1)
	words := nulls.Words()
	writeUint32(b, uint32(len(words)))
	for _, w := range words {
		writeUint64(b, w)
	}
}

func writeValue(b *bytes.Buffer, v value.Value) {
	b.WriteByte(byte(v.K))
	switch v.K {
	case value.KindNull:
	case value.KindFloat:
		writeUint64(b, math.Float64bits(v.F))
	case value.KindString:
		writeString(b, v.S)
	default:
		writeUint64(b, uint64(v.I))
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("extstore: truncated chunk (need %d bytes at %d of %d)", n, r.off, len(r.buf))
		return false
	}
	return true
}

func (r *reader) byte() byte {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) uint32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) uint64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) string() string {
	n := int(r.uint32())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) words() []uint64 {
	n := int(r.uint32())
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.uint64()
	}
	return out
}

func (r *reader) packed(n int) *columnstore.BitPacked {
	width := uint(r.byte())
	return columnstore.NewBitPackedFromWords(r.words(), width, n)
}

func (r *reader) nulls(n int) *columnstore.Bitset {
	if r.byte() == 0 {
		return nil
	}
	return columnstore.NewBitsetFromWords(r.words(), n)
}

func (r *reader) value() value.Value {
	k := value.Kind(r.byte())
	switch k {
	case value.KindNull:
		return value.Null
	case value.KindFloat:
		return value.Value{K: k, F: math.Float64frombits(r.uint64())}
	case value.KindString:
		return value.Value{K: k, S: r.string()}
	default:
		return value.Value{K: k, I: int64(r.uint64())}
	}
}
