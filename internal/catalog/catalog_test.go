package catalog

import (
	"testing"

	"repro/internal/columnstore"
	"repro/internal/value"
)

func schema() columnstore.Schema {
	return columnstore.Schema{{Name: "id", Kind: value.KindInt}, {Name: "yr", Kind: value.KindInt}}
}

func TestCreateAndResolveTable(t *testing.T) {
	c := New()
	e, err := c.CreateTable("orders", schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("orders", schema()); err == nil {
		t.Fatal("duplicate create must fail")
	}
	got, ok := c.Table("orders")
	if !ok || got != e || got.Primary() == nil {
		t.Fatal("resolve failed")
	}
	if len(c.Tables()) != 1 || c.Tables()[0] != "orders" {
		t.Fatalf("tables=%v", c.Tables())
	}
	if !c.DropTable("orders") || c.DropTable("orders") {
		t.Fatal("drop semantics")
	}
}

func TestRangePartitioning(t *testing.T) {
	c := New()
	e, err := c.CreateRangePartitioned("events", schema(), "yr", []int64{2014, 2015})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Partitions) != 3 {
		t.Fatalf("parts=%d", len(e.Partitions))
	}
	// Routing.
	if e.PartitionFor(value.Int(2013)) != e.Partitions[0] {
		t.Fatal("low routing")
	}
	if e.PartitionFor(value.Int(2014)) != e.Partitions[1] {
		t.Fatal("mid routing")
	}
	if e.PartitionFor(value.Int(2020)) != e.Partitions[2] {
		t.Fatal("high routing")
	}
	// Pruning ranges.
	p1 := e.Partitions[1] // [2014, 2015)
	if !p1.MayContainRange(value.Int(2014), value.Int(2014)) {
		t.Fatal("point range")
	}
	if p1.MayContainRange(value.Int(2015), value.Null) {
		t.Fatal("must be pruned for >= 2015")
	}
	if p1.MayContainRange(value.Null, value.Int(2013)) {
		t.Fatal("must be pruned for <= 2013")
	}
	if !p1.MayContainRange(value.Null, value.Null) {
		t.Fatal("unbounded must match")
	}
	if _, err := c.CreateRangePartitioned("bad", schema(), "nope", nil); err == nil {
		t.Fatal("unknown partition column accepted")
	}
}

func TestAttachPartitionAndTiers(t *testing.T) {
	c := New()
	c.CreateTable("orders", schema())
	cold := &Partition{
		Name:  "orders_cold",
		Table: columnstore.NewTable("orders_cold", schema()),
		Tier:  TierHDFS,
	}
	if err := c.AttachPartition("orders", cold); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Table("orders")
	if len(e.Partitions) != 2 || e.Partitions[1].Tier != TierHDFS {
		t.Fatal("attach failed")
	}
	if err := c.AttachPartition("ghost", cold); err == nil {
		t.Fatal("attach to missing table accepted")
	}
}

func TestViewsAndMetadata(t *testing.T) {
	c := New()
	c.CreateTable("t", schema())
	if err := c.CreateView("v", "SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView("v", "SELECT 1"); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if err := c.CreateView("t", "SELECT 1"); err == nil {
		t.Fatal("view shadowing table accepted")
	}
	v, ok := c.View("v")
	if !ok || v.SQL != "SELECT id FROM t" {
		t.Fatal("view lookup")
	}
	if err := c.SetMetadata("t", "aging", "rule1"); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Metadata("t", "aging"); !ok || got != "rule1" {
		t.Fatal("metadata lookup")
	}
	if _, ok := c.Metadata("t", "missing"); ok {
		t.Fatal("phantom metadata")
	}
}

func TestTableStats(t *testing.T) {
	c := New()
	e, _ := c.CreateTable("t", schema())
	e.Primary().ApplyInsert([]value.Row{{value.Int(1), value.Int(2013)}}, 1)
	s, err := c.TableStats("t", 1)
	if err != nil || s.Rows != 1 || s.Partitions != 1 || s.DeltaRows != 1 {
		t.Fatalf("stats=%+v err=%v", s, err)
	}
	if _, err := c.TableStats("nope", 1); err == nil {
		t.Fatal("missing table stats accepted")
	}
	if e.RowCount(1) != 1 {
		t.Fatal("rowcount")
	}
}
