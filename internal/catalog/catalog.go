// Package catalog is the central metadata repository of the ecosystem: the
// single place where tables, horizontal partitions, views, and semantic
// metadata (aging rules, stable-key hints, tier placement) are registered.
// The paper's "one central repository for business objects" (§V) is this
// catalog; the SOE's v2catalog service (Figure 3) replicates it per
// cluster.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/value"
)

// Tier identifies where a partition physically lives (Figure 1's data
// temperature spectrum).
type Tier string

// The storage tiers of the ecosystem.
const (
	TierHot      Tier = "hot"      // in-memory column store
	TierExtended Tier = "extended" // extended storage (IQ-like, simulated)
	TierHDFS     Tier = "hdfs"     // Hadoop tier
)

// Partition is one horizontal partition of a logical table.
type Partition struct {
	Name  string
	Table *columnstore.Table
	Tier  Tier
	// Range bounds on the partition column: rows r satisfy Lo <= r < Hi.
	// Lo/Hi are NULL for unbounded ends; PruneCol "" means unpartitioned.
	PruneCol string
	Lo, Hi   value.Value
	// ColdReadPenalty simulates the extra per-scan latency of non-hot
	// tiers; the executor charges it once per scanned partition.
	ColdReadPenalty int // microseconds
	// Zone is the per-column min/max/count synopsis recorded when the
	// partition was demoted to the warm tier; the planner prunes against
	// it before any extended-store page is faulted. Nil for hot
	// partitions and invalidated (by its Rows/Merges stamps) when the
	// table changes after demotion.
	Zone *columnstore.ZoneMap
}

// Covers reports whether a row with partition-column value v belongs here.
func (p *Partition) Covers(v value.Value) bool {
	if p.PruneCol == "" {
		return true
	}
	if !p.Lo.IsNull() && value.Compare(v, p.Lo) < 0 {
		return false
	}
	if !p.Hi.IsNull() && value.Compare(v, p.Hi) >= 0 {
		return false
	}
	return true
}

// MayContainRange reports whether the partition can hold any value in
// [lo, hi] (NULL bounds are unbounded). Used for partition pruning.
func (p *Partition) MayContainRange(lo, hi value.Value) bool {
	if p.PruneCol == "" {
		return true
	}
	if !p.Hi.IsNull() && !lo.IsNull() && value.Compare(lo, p.Hi) >= 0 {
		return false
	}
	if !p.Lo.IsNull() && !hi.IsNull() && value.Compare(hi, p.Lo) < 0 {
		return false
	}
	return true
}

// TableEntry is the logical table: schema plus one or more partitions.
type TableEntry struct {
	Name       string
	Schema     columnstore.Schema
	Partitions []*Partition
	// Metadata carries semantic annotations: aging rules (package aging),
	// document-column markers (package docstore), graph/hierarchy view
	// definitions, etc.
	Metadata map[string]string
	// Flexible tables (§II-H) accept DML with unknown columns.
	Flexible bool
}

// Primary returns the first (hot) partition; single-partition tables keep
// all data there.
func (e *TableEntry) Primary() *columnstore.Table { return e.Partitions[0].Table }

// PartitionFor returns the partition covering the given partition-column
// value (insert routing).
func (e *TableEntry) PartitionFor(v value.Value) *Partition {
	for _, p := range e.Partitions {
		if p.Covers(v) {
			return p
		}
	}
	return e.Partitions[0]
}

// RowCount sums live row estimates across partitions at timestamp ts.
func (e *TableEntry) RowCount(ts uint64) int {
	n := 0
	for _, p := range e.Partitions {
		n += p.Table.Snapshot(ts).LiveRows()
	}
	return n
}

// View is a named stored SELECT.
type View struct {
	Name string
	SQL  string
}

// Catalog is the metadata registry.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableEntry
	views  map[string]*View
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*TableEntry), views: make(map[string]*View)}
}

// CreateTable registers a single-partition hot table and returns its entry.
func (c *Catalog) CreateTable(name string, schema columnstore.Schema) (*TableEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := columnstore.NewTable(name, schema)
	e := &TableEntry{
		Name:   name,
		Schema: schema.Clone(),
		Partitions: []*Partition{{
			Name:  name,
			Table: t,
			Tier:  TierHot,
		}},
		Metadata: map[string]string{},
	}
	c.tables[name] = e
	return e, nil
}

// CreateRangePartitioned registers a table with range partitions on col.
// bounds are the split points: partition i holds [bounds[i-1], bounds[i]),
// with open first and last partitions.
func (c *Catalog) CreateRangePartitioned(name string, schema columnstore.Schema, col string, bounds []int64) (*TableEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if schema.ColIndex(col) < 0 {
		return nil, fmt.Errorf("catalog: partition column %q not in schema", col)
	}
	sorted := append([]int64(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	e := &TableEntry{Name: name, Schema: schema.Clone(), Metadata: map[string]string{}}
	for i := 0; i <= len(sorted); i++ {
		lo, hi := value.Null, value.Null
		if i > 0 {
			lo = value.Int(sorted[i-1])
		}
		if i < len(sorted) {
			hi = value.Int(sorted[i])
		}
		pname := fmt.Sprintf("%s_p%d", name, i)
		e.Partitions = append(e.Partitions, &Partition{
			Name:     pname,
			Table:    columnstore.NewTable(pname, schema),
			Tier:     TierHot,
			PruneCol: col,
			Lo:       lo,
			Hi:       hi,
		})
	}
	c.tables[name] = e
	return e, nil
}

// AttachPartition adds a pre-built partition (dynamic tiering moves data by
// attaching cold partitions backed by extended storage or HDFS).
func (c *Catalog) AttachPartition(table string, p *Partition) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("catalog: no table %q", table)
	}
	e.Partitions = append(e.Partitions, p)
	return nil
}

// Table resolves a table entry.
func (c *Catalog) Table(name string) (*TableEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[name]
	return e, ok
}

// MustTable resolves a table entry or panics; for internal wiring where the
// table is created by the same component.
func (c *Catalog) MustTable(name string) *TableEntry {
	e, ok := c.Table(name)
	if !ok {
		panic(fmt.Sprintf("catalog: missing table %q", name))
	}
	return e
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.tables[name]
	delete(c.tables, name)
	return ok
}

// Tables lists all table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateView registers a view definition.
func (c *Catalog) CreateView(name, sql string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[name]; ok {
		return fmt.Errorf("catalog: view %q already exists", name)
	}
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("catalog: %q already names a table", name)
	}
	c.views[name] = &View{Name: name, SQL: sql}
	return nil
}

// View resolves a view.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	return v, ok
}

// SetMetadata attaches a semantic annotation to a table.
func (c *Catalog) SetMetadata(table, key, val string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("catalog: no table %q", table)
	}
	e.Metadata[key] = val
	return nil
}

// Metadata reads a semantic annotation.
func (c *Catalog) Metadata(table, key string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[table]
	if !ok {
		return "", false
	}
	v, ok := e.Metadata[key]
	return v, ok
}

// Stats summarizes a table for the optimizer and the monitoring surface.
type Stats struct {
	Rows       int
	Partitions int
	Bytes      int
	DeltaRows  int
}

// TableStats computes statistics at timestamp ts.
func (c *Catalog) TableStats(name string, ts uint64) (Stats, error) {
	e, ok := c.Table(name)
	if !ok {
		return Stats{}, fmt.Errorf("catalog: no table %q", name)
	}
	var s Stats
	s.Partitions = len(e.Partitions)
	for _, p := range e.Partitions {
		s.Rows += p.Table.Snapshot(ts).LiveRows()
		s.Bytes += p.Table.Bytes()
		s.DeltaRows += p.Table.DeltaRows()
	}
	return s, nil
}
