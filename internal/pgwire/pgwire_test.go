package pgwire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

// startServer boots a wire server over a fresh engine on a random port.
func startServer(t *testing.T, cfg Config) (*Server, *sqlexec.Engine) {
	t.Helper()
	eng := sqlexec.NewEngine()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := Serve(EngineBackend{Engine: eng}, cfg)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, eng
}

func dialT(t *testing.T, srv *Server) *Conn {
	t.Helper()
	c, err := Dial(ClientConfig{Addr: srv.Addr().String(), User: "test", Database: "soe"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWireSimpleQuery(t *testing.T) {
	srv, _ := startServer(t, Config{})
	c := dialT(t, srv)

	if v := c.Parameter("server_version"); v == "" {
		t.Fatal("no server_version ParameterStatus")
	}
	if c.BackendPID() == 0 {
		t.Fatal("no BackendKeyData")
	}

	results, err := c.Simple(`CREATE TABLE t (a INT, b VARCHAR); INSERT INTO t VALUES (1, 'x'), (2, 'y'); SELECT a, b FROM t ORDER BY a`)
	if err != nil {
		t.Fatalf("simple: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	if results[0].Tag != "CREATE" {
		t.Fatalf("create tag %q", results[0].Tag)
	}
	if results[1].Tag != "INSERT 0 2" {
		t.Fatalf("insert tag %q", results[1].Tag)
	}
	sel := results[2]
	if sel.Tag != "SELECT 2" || len(sel.Rows) != 2 {
		t.Fatalf("select tag %q rows %d", sel.Tag, len(sel.Rows))
	}
	if sel.Get(0, 0) != "1" || sel.Get(0, 1) != "x" || sel.Get(1, 1) != "y" {
		t.Fatalf("rows %v", sel.Rows)
	}
	if len(sel.Cols) != 2 || sel.Cols[0] != "a" || sel.Cols[1] != "b" {
		t.Fatalf("cols %v", sel.Cols)
	}
}

func TestWireEmptyAndTypes(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE types (i INT, f DOUBLE, s VARCHAR, b BOOLEAN, ts TIMESTAMP)`)
	eng.MustQuery(`INSERT INTO types VALUES (7, 1.5, 'hi', TRUE, '2026-01-02 03:04:05')`)
	c := dialT(t, srv)

	results, err := c.Simple("  ;;  ")
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if len(results) != 1 || results[0].Tag != "" {
		t.Fatalf("want one EmptyQueryResponse, got %+v", results)
	}

	res, err := c.Query(`SELECT i, f, s, b, ts, NULL FROM types`)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	want := []string{"7", "1.5", "hi", "t", "2026-01-02 03:04:05.000000"}
	for i, w := range want {
		if got := res.Get(0, i); got != w {
			t.Fatalf("col %d: got %q want %q", i, got, w)
		}
	}
	if res.Rows[0][5] != nil {
		t.Fatal("NULL column should be nil")
	}
}

func TestWireExtendedParams(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE kv (k INT, v VARCHAR)`)
	for i := 0; i < 10; i++ {
		eng.MustQuery(`INSERT INTO kv VALUES (?, ?)`, value.Int(int64(i)), value.String(fmt.Sprintf("v%d", i)))
	}
	c := dialT(t, srv)

	// Unnamed statement, $1 parameter.
	res, err := c.Query(`SELECT v FROM kv WHERE k = $1`, 7)
	if err != nil {
		t.Fatalf("extended: %v", err)
	}
	if len(res.Rows) != 1 || res.Get(0, 0) != "v7" {
		t.Fatalf("rows %v", res.Rows)
	}

	// Named prepared statement reused with different parameters; $1 twice.
	if err := c.Prepare("get", `SELECT k, v FROM kv WHERE k = $1 OR k = $1 + 1 ORDER BY k`); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for base := 0; base < 3; base++ {
		res, err := c.ExecPrepared("get", base)
		if err != nil {
			t.Fatalf("exec prepared: %v", err)
		}
		if len(res.Rows) != 2 || res.Get(0, 0) != fmt.Sprint(base) {
			t.Fatalf("base %d rows %v", base, res.Rows)
		}
	}

	// NULL parameter.
	res, err = c.Query(`SELECT v FROM kv WHERE k = $1`, nil)
	if err != nil {
		t.Fatalf("null param: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("NULL never equals: rows %v", res.Rows)
	}

	// Parameterized insert through the extended protocol.
	res, err = c.Query(`INSERT INTO kv VALUES ($1, $2)`, 100, "hundred")
	if err != nil {
		t.Fatalf("param insert: %v", err)
	}
	if res.Tag != "INSERT 0 1" {
		t.Fatalf("tag %q", res.Tag)
	}
}

func TestWireTransactions(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE acc (id INT, bal INT)`)
	eng.MustQuery(`INSERT INTO acc VALUES (1, 100)`)
	c := dialT(t, srv)

	// Commit path.
	if _, err := c.Simple(`BEGIN`); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if c.TxStatus() != 'T' {
		t.Fatalf("txstatus %q, want T", c.TxStatus())
	}
	if _, err := c.Query(`UPDATE acc SET bal = bal - $1 WHERE id = $2`, 30, 1); err != nil {
		t.Fatalf("update: %v", err)
	}
	if _, err := c.Simple(`COMMIT`); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if c.TxStatus() != 'I' {
		t.Fatalf("txstatus %q, want I", c.TxStatus())
	}
	res, _ := c.Query(`SELECT bal FROM acc WHERE id = 1`)
	if res.Get(0, 0) != "70" {
		t.Fatalf("bal %q", res.Get(0, 0))
	}

	// Rollback path.
	c.Simple(`BEGIN`)
	c.Query(`UPDATE acc SET bal = 0 WHERE id = 1`)
	c.Simple(`ROLLBACK`)
	res, _ = c.Query(`SELECT bal FROM acc WHERE id = 1`)
	if res.Get(0, 0) != "70" {
		t.Fatalf("after rollback bal %q", res.Get(0, 0))
	}

	// Failed-transaction semantics: error inside a txn aborts it; further
	// statements fail 25P02; COMMIT rolls back.
	c.Simple(`BEGIN`)
	_, err := c.Simple(`SELECT broken syntax here`)
	if !hasCode(err, CodeSyntaxError) {
		t.Fatalf("want 42601, got %v", err)
	}
	if c.TxStatus() != 'E' {
		t.Fatalf("txstatus %q, want E", c.TxStatus())
	}
	_, err = c.Simple(`SELECT bal FROM acc`)
	if !hasCode(err, CodeFailedTxn) {
		t.Fatalf("want 25P02, got %v", err)
	}
	results, err := c.Simple(`COMMIT`)
	if err != nil {
		t.Fatalf("commit-in-failed: %v", err)
	}
	if results[0].Tag != "ROLLBACK" {
		t.Fatalf("commit in failed txn should report ROLLBACK, got %q", results[0].Tag)
	}
	if c.TxStatus() != 'I' {
		t.Fatalf("txstatus %q, want I", c.TxStatus())
	}
}

func TestWireSQLSTATECodes(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE t (a INT)`)
	c := dialT(t, srv)

	cases := []struct {
		sql  string
		code string
	}{
		{`SELECT FROM WHERE`, CodeSyntaxError},
		{`SELECT * FROM nope`, CodeUndefinedTable},
		{`SELECT zzz FROM t`, CodeUndefinedColumn},
		{`SELECT nofunc(a) FROM t`, CodeUndefinedFunction},
		{`CREATE TABLE t (a INT)`, CodeDuplicateTable},
		{`COMMIT`, CodeNoActiveTxn},
		{`ROLLBACK`, CodeNoActiveTxn},
	}
	for _, tc := range cases {
		_, err := c.Simple(tc.sql)
		if !hasCode(err, tc.code) {
			t.Errorf("%q: want SQLSTATE %s, got %v", tc.sql, tc.code, err)
		}
		// The connection must stay usable after every error.
		if _, err := c.Simple(`SELECT COUNT(*) FROM t`); err != nil {
			t.Fatalf("connection broken after %q: %v", tc.sql, err)
		}
	}

	// BEGIN twice: active_sql_transaction.
	c.Simple(`BEGIN`)
	_, err := c.Simple(`BEGIN`)
	if !hasCode(err, CodeActiveTxn) {
		t.Fatalf("want 25001, got %v", err)
	}
	c.Simple(`ROLLBACK`)
}

func TestWireConcurrentConnections(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE c (w INT, n INT)`)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(ClientConfig{Addr: srv.Addr().String(), User: "w"})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				if _, err := c.Query(`INSERT INTO c VALUES ($1, $2)`, w, i); err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
				if _, err := c.Query(`SELECT COUNT(*) FROM c WHERE w = $1`, w); err != nil {
					errs <- fmt.Errorf("worker %d select %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := eng.MustQuery(`SELECT COUNT(*) FROM c`)
	if got := res.Rows[0][0].AsInt(); got != workers*25 {
		t.Fatalf("rows %d, want %d", got, workers*25)
	}
}

func TestWireCancelRequest(t *testing.T) {
	srv, _ := startServer(t, Config{})
	c := dialT(t, srv)
	if err := c.Cancel(); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	// The cancel flag trips the next statement boundary with 57014.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Simple(`SELECT 1`)
		if hasCode(err, CodeQueryCanceled) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never delivered")
		}
	}
	// And the connection survives.
	if _, err := c.Simple(`SELECT 1`); err != nil {
		t.Fatalf("after cancel: %v", err)
	}
}

func TestWireMaxConns(t *testing.T) {
	srv, _ := startServer(t, Config{MaxConns: 2})
	c1 := dialT(t, srv)
	c2 := dialT(t, srv)
	_ = c1
	_ = c2
	_, err := Dial(ClientConfig{Addr: srv.Addr().String(), User: "x", Timeout: 2 * time.Second})
	if !hasCode(err, CodeTooManyConnections) {
		t.Fatalf("want 53300, got %v", err)
	}
}

func TestWireAdmissionRejects(t *testing.T) {
	obs := stats.NewRegistry()
	srv, eng := startServer(t, Config{Workers: 1, QueueDepth: 1, Obs: obs})
	eng.MustQuery(`CREATE TABLE slow (a INT)`)
	for i := 0; i < 2000; i++ {
		eng.MustQuery(`INSERT INTO slow VALUES (?)`, value.Int(int64(i)))
	}

	// Many clients hammering a 1-worker/1-queue server: some statements
	// must be rejected with 53400, none may hang or get a bare error.
	const clients = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected := 0
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ClientConfig{Addr: srv.Addr().String(), User: "x"})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				_, err := c.Query(`SELECT COUNT(*), SUM(a) FROM slow`)
				if err != nil {
					if !hasCode(err, CodeAdmissionRejected) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					mu.Lock()
					rejected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	snap := obs.Snapshot()
	if v, _ := snap.Counter("pgwire_admission_rejections_total"); v != int64(rejected) {
		t.Fatalf("metric says %d rejections, clients saw %d", v, rejected)
	}
}

func TestWireGracefulDrain(t *testing.T) {
	obs := stats.NewRegistry()
	srv, eng := startServer(t, Config{Obs: obs})
	eng.MustQuery(`CREATE TABLE d (a INT)`)

	// One busy connection mid-burst, one idle connection.
	busy := dialT(t, srv)
	idle := dialT(t, srv)
	_ = idle

	var busyErrs, completed int
	busyDone := make(chan struct{})
	go func() {
		defer close(busyDone)
		for i := 0; i < 200; i++ {
			_, err := busy.Query(`INSERT INTO d VALUES ($1)`, i)
			if err != nil {
				if !hasCode(err, CodeAdminShutdown) {
					busyErrs++
				}
				return
			}
			completed++
		}
	}()
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-busyDone
	if busyErrs != 0 {
		t.Fatalf("busy connection saw %d non-drain errors", busyErrs)
	}

	// Every insert the client saw confirmed must be durable: zero dropped
	// responses means response count == committed row count.
	res := eng.MustQuery(`SELECT COUNT(*) FROM d`)
	if got := res.Rows[0][0].AsInt(); got < int64(completed) {
		t.Fatalf("client saw %d confirms but table has %d rows", completed, got)
	}

	// New connections are refused while draining/closed.
	if _, err := Dial(ClientConfig{Addr: srv.Addr().String(), User: "x", Timeout: time.Second}); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
	if !srv.Draining() {
		t.Fatal("Draining() should report true")
	}
}

func TestWirePortalSuspension(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE p (a INT)`)
	for i := 0; i < 10; i++ {
		eng.MustQuery(`INSERT INTO p VALUES (?)`, value.Int(int64(i)))
	}
	c := dialT(t, srv)

	// Drive Execute with a row limit by hand: Parse+Bind, then two
	// Executes of 6 rows each — first suspends, second completes.
	c.sendParse("", `SELECT a FROM p ORDER BY a`)
	c.out.start(msgBind)
	c.out.string("")
	c.out.string("")
	c.out.int16(0)
	c.out.int16(0)
	c.out.int16(0)
	c.out.finish()
	for i := 0; i < 2; i++ {
		c.out.start(msgExecute)
		c.out.string("")
		c.out.int32(6)
		c.out.finish()
	}
	c.sync()

	var rows, suspends int
	tag := ""
	for done := false; !done; {
		typ, payload, err := readFrame(c.r, DefaultMaxMessage)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		m := &msgReader{buf: payload}
		switch typ {
		case msgDataRow:
			rows++
		case msgPortalSuspended:
			suspends++
		case msgCommandComplete:
			tag = m.string()
		case msgReadyForQuery:
			done = true
		case msgErrorResponse:
			t.Fatalf("error: %v", decodeError(m))
		}
	}
	if rows != 10 || suspends != 1 || tag != "SELECT 10" {
		t.Fatalf("rows=%d suspends=%d tag=%q", rows, suspends, tag)
	}
}

func hasCode(err error, code string) bool {
	var pe *PGError
	if errors.As(err, &pe) {
		return pe.Code == code
	}
	return false
}
