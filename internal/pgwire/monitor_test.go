package pgwire

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/stats"
)

// TestMonitoringViewsOverWire is the end-to-end acceptance path: a real
// pgwire server under concurrent mixed load, observed by a plain SQL
// client polling sys.m_statements and sys.m_connections over the same
// protocol it is monitoring. Run with -race: the monitoring reads race
// against every load worker unless the snapshot locking is right.
func TestMonitoringViewsOverWire(t *testing.T) {
	eng := sqlexec.NewEngine()
	obs := stats.NewRegistry()
	srv, err := Serve(EngineBackend{Engine: eng}, Config{Addr: "127.0.0.1:0", Obs: obs})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	// Concurrent mixed traffic in the background...
	var wg sync.WaitGroup
	var rep *LoadReport
	var loadErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, loadErr = RunLoad(LoadConfig{
			Addr:     srv.Addr().String(),
			Conns:    16,
			Duration: 1200 * time.Millisecond,
			SeedRows: 1000,
		})
	}()

	// ...while a monitoring client polls the sys views over the wire.
	mon, err := Dial(ClientConfig{Addr: srv.Addr().String(), User: "monitor"})
	if err != nil {
		t.Fatalf("dial monitor: %v", err)
	}
	defer mon.Close()

	sawPeers := false
	for i := 0; i < 20; i++ {
		res, err := mon.Query(`SELECT * FROM sys.m_statements ORDER BY total_ms DESC LIMIT 5`)
		if err != nil {
			t.Fatalf("poll m_statements: %v", err)
		}
		if len(res.Rows) > 5 {
			t.Fatalf("LIMIT 5 returned %d rows", len(res.Rows))
		}
		res, err = mon.Query(`SELECT pid, state, txn_status, statements FROM sys.m_connections`)
		if err != nil {
			t.Fatalf("poll m_connections: %v", err)
		}
		if len(res.Rows) > 1 {
			sawPeers = true
		}
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("load: %v", loadErr)
	}
	if rep.ProtocolErrors != 0 || rep.Queries == 0 {
		t.Fatalf("load report implausible: %+v", rep)
	}
	if !sawPeers {
		t.Fatal("monitoring client never saw the load connections in sys.m_connections")
	}

	// The workload is fingerprint-aggregated: thousands of point lookups
	// with distinct literals are one statement shape whose call count
	// matches the load report, queryable with ordinary SQL.
	res, err := mon.Query(
		`SELECT fingerprint_id, query, calls FROM sys.m_statements WHERE query = 'SELECT v FROM loadgen_kv WHERE k = ?'`)
	if err != nil {
		t.Fatalf("aggregate query: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("point-lookup shape rows = %d, want 1", len(res.Rows))
	}
	if fp := res.Get(0, 0); len(fp) != 16 {
		t.Fatalf("fingerprint_id %q not 16 hex digits", fp)
	}
	calls, _ := strconv.ParseInt(res.Get(0, 2), 10, 64)
	if want := rep.PerOp[OpPoint].Count; calls < want {
		t.Fatalf("aggregated calls %d < load report count %d", calls, want)
	}

	// The top-by-total-time ordering the acceptance criterion names.
	res, err = mon.Query(`SELECT * FROM sys.m_statements ORDER BY total_ms DESC LIMIT 5`)
	if err != nil {
		t.Fatalf("top query: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no statements after load")
	}
	last := -1.0
	totalCol := colIndex(t, res.Cols, "total_ms")
	for i := range res.Rows {
		v, err := strconv.ParseFloat(res.Get(i, totalCol), 64)
		if err != nil {
			t.Fatalf("total_ms row %d: %v", i, err)
		}
		if last >= 0 && v > last {
			t.Fatalf("not ordered by total_ms desc: %f after %f", v, last)
		}
		last = v
	}

	// The monitoring connection sees itself, active, with its own pid.
	res, err = mon.Query(`SELECT pid, state, statement FROM sys.m_connections`)
	if err != nil {
		t.Fatalf("self query: %v", err)
	}
	self := false
	for i := range res.Rows {
		if res.Get(i, 0) == strconv.FormatUint(uint64(mon.BackendPID()), 10) {
			self = true
			if res.Get(i, 1) != "active" {
				t.Fatalf("own connection state %q, want active", res.Get(i, 1))
			}
			if !strings.Contains(res.Get(i, 2), "m_connections") {
				t.Fatalf("own statement %q does not show the running query", res.Get(i, 2))
			}
		}
	}
	if !self {
		t.Fatal("monitoring connection missing from sys.m_connections")
	}
}

func colIndex(t *testing.T, cols []string, name string) int {
	t.Helper()
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, cols)
	return -1
}
