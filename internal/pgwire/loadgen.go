package pgwire

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// The loadgen harness: N concurrent wire connections driving a
// configurable mix of point lookups (extended protocol with $1 params),
// analytic aggregates, dimension joins, and ingest against any pgwire
// server. Latencies
// and errors flow through the stats pipeline (loadgen_* metrics), so the
// report and a Prometheus scrape can never disagree.

// Op names of the traffic mix.
const (
	OpPoint  = "point"
	OpAgg    = "agg"
	OpJoin   = "join"
	OpInsert = "insert"
)

// LoadConfig shapes a load run.
type LoadConfig struct {
	Addr     string
	Conns    int           // concurrent connections (default 100)
	Duration time.Duration // steady-state run time (default 5s)

	// Mix weights (relative; default 65/10/5/20).
	PointWeight  int
	AggWeight    int
	JoinWeight   int
	InsertWeight int

	SeedRows int  // rows seeded into each workload table (default 10000)
	NoSetup  bool // skip CREATE/seed (tables already exist)

	// Obs receives loadgen_* metrics; nil creates a private registry.
	// The ring is deepened to 1<<14 samples so p999 is meaningful.
	Obs *stats.Registry
}

// OpStats is one op class's outcome.
type OpStats struct {
	Count  int64
	Errors int64
	P50    float64 // milliseconds
	P99    float64
	P999   float64
}

// LoadReport is a run's outcome. ProtocolErrors counts transport/framing
// failures (anything that is not a coded SQLSTATE error); Rejections
// counts admission-control refusals (SQLSTATE class 53) — under overload
// those are the expected failure mode, never hangs.
type LoadReport struct {
	Conns          int
	Wall           time.Duration
	Queries        int64
	QPS            float64
	Errors         int64 // SQLSTATE-coded errors excluding rejections
	Rejections     int64
	ProtocolErrors int64
	PerOp          map[string]*OpStats
	Obs            *stats.Registry // the registry the run recorded into
}

// String renders the report as an aligned table.
func (r *LoadReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loadgen: %d conns, %v wall, %d queries (%.0f qps), %d errors, %d rejections, %d protocol errors\n",
		r.Conns, r.Wall.Round(time.Millisecond), r.Queries, r.QPS, r.Errors, r.Rejections, r.ProtocolErrors)
	fmt.Fprintf(&sb, "%-8s %10s %8s %10s %10s %10s\n", "op", "count", "errors", "p50", "p99", "p999")
	for _, op := range []string{OpPoint, OpAgg, OpJoin, OpInsert} {
		s := r.PerOp[op]
		if s == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-8s %10d %8d %9.2fms %9.2fms %9.2fms\n", op, s.Count, s.Errors, s.P50, s.P99, s.P999)
	}
	return sb.String()
}

func (c *LoadConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 100
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.PointWeight <= 0 && c.AggWeight <= 0 && c.JoinWeight <= 0 && c.InsertWeight <= 0 {
		c.PointWeight, c.AggWeight, c.JoinWeight, c.InsertWeight = 65, 10, 5, 20
	}
	if c.SeedRows <= 0 {
		c.SeedRows = 10000
	}
	if c.Obs == nil {
		c.Obs = stats.NewRegistry()
		c.Obs.SetHistogramCapacity(1 << 14)
	}
}

// SetupLoadTables creates and seeds the workload tables over the wire
// (idempotent: CREATE TABLE IF NOT EXISTS plus a count check).
func SetupLoadTables(cfg ClientConfig, seedRows int) error {
	c, err := Dial(cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Simple(`CREATE TABLE IF NOT EXISTS loadgen_kv (k INT, v VARCHAR)`); err != nil {
		return fmt.Errorf("loadgen setup: %w", err)
	}
	if _, err := c.Simple(`CREATE TABLE IF NOT EXISTS loadgen_orders (region VARCHAR, amount DOUBLE)`); err != nil {
		return fmt.Errorf("loadgen setup: %w", err)
	}
	if _, err := c.Simple(`CREATE TABLE IF NOT EXISTS loadgen_dim (region VARCHAR, name VARCHAR)`); err != nil {
		return fmt.Errorf("loadgen setup: %w", err)
	}
	res, err := c.Query(`SELECT COUNT(*) FROM loadgen_kv`)
	if err != nil {
		return fmt.Errorf("loadgen setup: %w", err)
	}
	if len(res.Rows) == 1 && res.Get(0, 0) != "0" {
		return nil // already seeded
	}
	regions := []string{"EMEA", "AMER", "APJ"}
	if _, err := c.Simple(`INSERT INTO loadgen_dim VALUES ('EMEA', 'Europe'), ('AMER', 'Americas'), ('APJ', 'Asia-Pacific')`); err != nil {
		return fmt.Errorf("loadgen seed: %w", err)
	}
	const batch = 500
	for lo := 0; lo < seedRows; lo += batch {
		hi := lo + batch
		if hi > seedRows {
			hi = seedRows
		}
		var kv, ord strings.Builder
		kv.WriteString("INSERT INTO loadgen_kv VALUES ")
		ord.WriteString("INSERT INTO loadgen_orders VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				kv.WriteString(", ")
				ord.WriteString(", ")
			}
			fmt.Fprintf(&kv, "(%d, 'v%08d')", i, i)
			fmt.Fprintf(&ord, "('%s', %d.5)", regions[i%3], i%1000)
		}
		if _, err := c.Simple(kv.String()); err != nil {
			return fmt.Errorf("loadgen seed: %w", err)
		}
		if _, err := c.Simple(ord.String()); err != nil {
			return fmt.Errorf("loadgen seed: %w", err)
		}
	}
	return nil
}

// RunLoad dials cfg.Conns connections, runs the mixed workload for
// cfg.Duration, and reports latency quantiles and error counts through
// the stats pipeline.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	if !cfg.NoSetup {
		if err := SetupLoadTables(ClientConfig{Addr: cfg.Addr, User: "loadgen"}, cfg.SeedRows); err != nil {
			return nil, err
		}
	}

	// Dial every connection before starting the clock, with bounded
	// parallelism so a large fleet doesn't overrun the accept backlog.
	conns := make([]*Conn, cfg.Conns)
	dialSem := make(chan struct{}, 64)
	var dialErr atomic.Value
	var dialWG sync.WaitGroup
	for i := range conns {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			dialSem <- struct{}{}
			defer func() { <-dialSem }()
			c, err := Dial(ClientConfig{Addr: cfg.Addr, User: fmt.Sprintf("loadgen%d", i)})
			if err != nil {
				dialErr.Store(err)
				return
			}
			conns[i] = c
		}(i)
	}
	dialWG.Wait()
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	if err, _ := dialErr.Load().(error); err != nil {
		return nil, fmt.Errorf("loadgen dial: %w", err)
	}

	obs := cfg.Obs
	hists := map[string]*stats.Histogram{
		OpPoint:  obs.Histogram("loadgen_query_ms", "op="+OpPoint),
		OpAgg:    obs.Histogram("loadgen_query_ms", "op="+OpAgg),
		OpJoin:   obs.Histogram("loadgen_query_ms", "op="+OpJoin),
		OpInsert: obs.Histogram("loadgen_query_ms", "op="+OpInsert),
	}
	var queries, rejections, protoErrs atomic.Int64
	opCounts := map[string]*atomic.Int64{OpPoint: {}, OpAgg: {}, OpJoin: {}, OpInsert: {}}
	opErrs := map[string]*atomic.Int64{OpPoint: {}, OpAgg: {}, OpJoin: {}, OpInsert: {}}

	total := cfg.PointWeight + cfg.AggWeight + cfg.JoinWeight + cfg.InsertWeight
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(worker int, c *Conn) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)*7919 + 17))
			// Per-worker key range for collision-free ingest.
			nextKey := int64(cfg.SeedRows) + int64(worker)<<32
			for time.Now().Before(deadline) {
				var op string
				switch w := rng.Intn(total); {
				case w < cfg.PointWeight:
					op = OpPoint
				case w < cfg.PointWeight+cfg.AggWeight:
					op = OpAgg
				case w < cfg.PointWeight+cfg.AggWeight+cfg.JoinWeight:
					op = OpJoin
				default:
					op = OpInsert
				}
				t0 := time.Now()
				var err error
				switch op {
				case OpPoint:
					_, err = c.Query(`SELECT v FROM loadgen_kv WHERE k = $1`, rng.Intn(cfg.SeedRows))
				case OpAgg:
					_, err = c.Query(`SELECT region, COUNT(*), SUM(amount) FROM loadgen_orders GROUP BY region`)
				case OpJoin:
					_, err = c.Query(`SELECT d.name, COUNT(*), SUM(o.amount) FROM loadgen_orders o JOIN loadgen_dim d ON o.region = d.region GROUP BY d.name`)
				case OpInsert:
					nextKey++
					_, err = c.Query(`INSERT INTO loadgen_kv VALUES ($1, $2)`, nextKey, fmt.Sprintf("w%08d", nextKey))
				}
				hists[op].ObserveSince(t0)
				queries.Add(1)
				opCounts[op].Add(1)
				obs.Counter("loadgen_queries_total", "op="+op).Inc()
				if err != nil {
					if pe, ok := err.(*PGError); ok {
						obs.Counter("loadgen_errors_total", "code="+pe.Code).Inc()
						if strings.HasPrefix(pe.Code, "53") {
							rejections.Add(1)
							continue // rejection is the designed overload response
						}
						if pe.Code == CodeAdminShutdown || pe.Code == CodeCannotConnectNow {
							// Orderly drain: the server answered every
							// in-flight query and is closing the socket.
							// Stop the worker — not a protocol error.
							return
						}
						opErrs[op].Add(1)
						continue
					}
					// Transport/framing failure: the connection is not
					// recoverable; stop this worker.
					obs.Counter("loadgen_protocol_errors_total").Inc()
					protoErrs.Add(1)
					opErrs[op].Add(1)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &LoadReport{
		Conns:          cfg.Conns,
		Wall:           wall,
		Queries:        queries.Load(),
		QPS:            float64(queries.Load()) / wall.Seconds(),
		Rejections:     rejections.Load(),
		ProtocolErrors: protoErrs.Load(),
		PerOp:          map[string]*OpStats{},
		Obs:            obs,
	}
	for _, op := range []string{OpPoint, OpAgg, OpJoin, OpInsert} {
		h := hists[op]
		s := &OpStats{
			Count:  opCounts[op].Load(),
			Errors: opErrs[op].Load(),
			P50:    h.Quantile(0.50),
			P99:    h.Quantile(0.99),
			P999:   h.Quantile(0.999),
		}
		rep.Errors += s.Errors
		rep.PerOp[op] = s
	}
	rep.Errors -= rep.ProtocolErrors // already itemized separately
	if rep.Errors < 0 {
		rep.Errors = 0
	}
	return rep, nil
}
