package pgwire

import (
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Session is what one wire connection executes against: the sqlexec
// session surface (auto-commit queries, explicit transactions, positional
// parameters). Implementations are used by exactly one connection
// goroutine at a time — the same single-goroutine contract sqlexec.Session
// documents.
type Session interface {
	Query(sql string, params ...value.Value) (*sqlexec.Result, error)
	Begin() error
	Commit() error
	Rollback() error
	InTxn() bool
	Close()
}

// Backend hands out per-connection sessions. The server calls NewSession
// once per accepted startup and Close when the connection ends.
type Backend interface {
	NewSession() Session
}

// EngineBackend adapts a sqlexec.Engine: every connection gets its own
// session over the shared engine, which is the concurrency model the
// engine supports (engine shared, session per goroutine).
type EngineBackend struct {
	Engine *sqlexec.Engine
}

// NewSession opens an engine session for one connection.
func (b EngineBackend) NewSession() Session { return b.Engine.NewSession() }
