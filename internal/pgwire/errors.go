package pgwire

import (
	"errors"
	"strings"

	"repro/internal/txn"
)

// SQLSTATE codes used by the wire layer. The E19 invariant — no error
// leaves a subsystem bare — extends to the socket: every ErrorResponse
// carries one of these five-character class codes, so clients can branch
// on machine-readable state instead of message prose.
const (
	CodeSyntaxError         = "42601"
	CodeUndefinedTable      = "42P01"
	CodeUndefinedColumn     = "42703"
	CodeUndefinedFunction   = "42883"
	CodeUndefinedObject     = "42704"
	CodeDuplicateTable      = "42P07"
	CodeDuplicatePrepared   = "42P05"
	CodeInvalidStatement    = "26000" // Bind/Describe/Execute of a missing statement
	CodeInvalidCursor       = "34000" // missing portal
	CodeActiveTxn           = "25001" // BEGIN inside a transaction
	CodeNoActiveTxn         = "25P01" // COMMIT/ROLLBACK outside one
	CodeFailedTxn           = "25P02" // statement in an aborted transaction
	CodeSerializationFail   = "40001" // write-write conflict
	CodeTooManyConnections  = "53300"
	CodeAdmissionRejected   = "53400" // configuration_limit_exceeded: queue full
	CodeQueryCanceled       = "57014"
	CodeAdminShutdown       = "57P01" // graceful drain closed the session
	CodeCannotConnectNow    = "57P03" // startup refused while draining
	CodeProtocolViolation   = "08P01"
	CodeFeatureNotSupported = "0A000"
	CodeInternalError       = "XX000"
)

// WireError is an error with an explicit SQLSTATE. Layers that know their
// state attach it; everything else is classified by sqlstateFor.
type WireError struct {
	Code    string
	Message string
}

func (e *WireError) Error() string { return e.Message }

// wireErr builds a coded error.
func wireErr(code, msg string) *WireError { return &WireError{Code: code, Message: msg} }

// sqlstateFor maps any engine error onto a SQLSTATE. Explicitly coded
// errors pass through; known engine error shapes (parser, catalog,
// transaction manager) are classified by their stable prefixes; anything
// unrecognized is an internal error — coded, never bare.
func sqlstateFor(err error) string {
	var we *WireError
	if errors.As(err, &we) {
		return we.Code
	}
	if errors.Is(err, txn.ErrConflict) {
		return CodeSerializationFail
	}
	if errors.Is(err, txn.ErrClosed) {
		return CodeNoActiveTxn
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "parse error"),
		strings.Contains(msg, "unexpected"),
		strings.Contains(msg, "unterminated"),
		strings.Contains(msg, "unsupported statement"),
		strings.Contains(msg, "trailing input"),
		strings.Contains(msg, "expected "):
		return CodeSyntaxError
	case strings.Contains(msg, "unknown table"), strings.Contains(msg, "no table"):
		return CodeUndefinedTable
	case strings.Contains(msg, "unknown column"), strings.Contains(msg, "column reference"):
		return CodeUndefinedColumn
	case strings.Contains(msg, "unknown function"):
		return CodeUndefinedFunction
	case strings.Contains(msg, "unknown type"):
		return CodeUndefinedObject
	case strings.Contains(msg, "already exists"):
		return CodeDuplicateTable
	case strings.Contains(msg, "transaction already open"):
		return CodeActiveTxn
	case strings.Contains(msg, "no open transaction"):
		return CodeNoActiveTxn
	case strings.Contains(msg, "requires parameter"):
		return CodeProtocolViolation
	case strings.Contains(msg, "bare $"), strings.Contains(msg, "parameter reference"):
		return CodeSyntaxError
	case strings.Contains(msg, "conflict"):
		return CodeSerializationFail
	default:
		return CodeInternalError
	}
}

// PGError is the client-side decoding of an ErrorResponse.
type PGError struct {
	Severity string
	Code     string
	Message  string
}

func (e *PGError) Error() string {
	return "pgwire: " + e.Severity + " " + e.Code + ": " + e.Message
}
