package pgwire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// prepStmt is one named (or unnamed) prepared statement.
type prepStmt struct {
	sql     string
	nparams int
}

// portal is one bound portal: a statement plus parameter values. The
// statement runs lazily on the first Describe/Execute touching the
// portal, and the cached result supports Execute row limits with
// PortalSuspended continuation.
type portal struct {
	stmt    *prepStmt
	params  []value.Value
	ran     bool
	counted bool // pgwire_queries_total recorded (suspended portals resume)
	res     *sqlexec.Result
	err     error
	pos     int // next row to send
}

// conn is one wire connection: a single goroutine owns the read loop and
// all protocol writes; the server's drain/cancel paths only touch the
// atomic flags and the write mutex.
type conn struct {
	srv    *Server
	nc     net.Conn
	r      *bufio.Reader
	out    *msgWriter
	pid    uint32
	secret uint32

	sess     Session
	stmts    map[string]*prepStmt
	portals  map[string]*portal
	txFailed bool // error inside an explicit transaction: 25P02 until ROLLBACK
	skipSync bool // error inside an extended batch: discard until Sync

	canceled atomic.Bool
	busy     atomic.Bool
	writeMu  sync.Mutex
	closed   bool // guarded by writeMu

	// Monitoring mirror for sys.m_connections: read by monitoring scans
	// from other goroutines, so guarded by its own mutex. The owning
	// goroutine updates it at statement boundaries and on ReadyForQuery.
	connected time.Time
	monMu     sync.Mutex
	monStmt   string // statement currently executing, "" when idle
	monTx     byte   // last reported txn status (I/T/E)
	monCount  int64  // statements executed
}

func newConn(s *Server, nc net.Conn, pid, secret uint32) *conn {
	return &conn{
		srv:       s,
		nc:        nc,
		r:         bufio.NewReaderSize(nc, 8192),
		out:       &msgWriter{w: bufio.NewWriterSize(nc, 8192)},
		pid:       pid,
		secret:    secret,
		stmts:     map[string]*prepStmt{},
		portals:   map[string]*portal{},
		connected: time.Now(),
		monTx:     txnIdle,
	}
}

// monStart/monEnd publish the running statement to sys.m_connections.
func (c *conn) monStart(sql string) {
	c.monMu.Lock()
	c.monStmt = sql
	c.monCount++
	c.monMu.Unlock()
}

func (c *conn) monEnd() {
	c.monMu.Lock()
	c.monStmt = ""
	c.monMu.Unlock()
}

// serve runs the connection to completion: handshake, then the message
// loop until Terminate, error, or drain.
func (c *conn) serve() {
	defer c.forceClose()
	if !c.startup() {
		return
	}
	c.sess = c.srv.backend.NewSession()
	defer c.sess.Close()

	c.sendReady()
	if c.flush() != nil {
		return
	}
	for {
		// Graceful drain: between commands, with nothing buffered and no
		// open transaction, the connection can be retired with a coded
		// error instead of a mid-response cut.
		if c.srv.draining.Load() && c.r.Buffered() == 0 && !c.skipSync && !c.sess.InTxn() {
			c.sendError(CodeAdminShutdown, "server is shutting down")
			c.flush()
			c.srv.obs.Counter("pgwire_drained_conns_total").Inc()
			return
		}
		c.busy.Store(false)
		typ, payload, err := readFrame(c.r, c.srv.cfg.MaxMessage)
		c.busy.Store(true)
		if err != nil {
			if errors.Is(err, errFrameLength) {
				// Framed garbage, not a vanished client: say why before
				// hanging up.
				c.sendError(CodeProtocolViolation, err.Error())
				c.flush()
			}
			return
		}
		if !c.dispatch(typ, &msgReader{buf: payload}) {
			return
		}
	}
}

// dispatch handles one frontend message; false ends the connection.
func (c *conn) dispatch(typ byte, m *msgReader) bool {
	// After an error inside an extended batch, every message except Sync
	// (and Terminate) is discarded — the skip-until-Sync rule.
	if c.skipSync && typ != msgSync && typ != msgTerminate {
		return true
	}
	switch typ {
	case msgQuery:
		c.simpleQuery(m.string())
		c.sendReady()
		return c.flush() == nil
	case msgParse:
		c.handleParse(m)
	case msgBind:
		c.handleBind(m)
	case msgDescribe:
		c.handleDescribe(m)
	case msgExecute:
		c.handleExecute(m)
	case msgClose:
		c.handleClose(m)
	case msgFlush:
		return c.flush() == nil
	case msgSync:
		c.skipSync = false
		c.sendReady()
		return c.flush() == nil
	case msgTerminate:
		return false
	case msgFuncCall:
		c.extError(CodeFeatureNotSupported, "function call protocol not supported")
	default:
		// An unrecognized message type means the stream is out of step;
		// there is no safe way to resynchronize, so report and hang up.
		c.sendError(CodeProtocolViolation, fmt.Sprintf("unknown message type %q", typ))
		c.flush()
		return false
	}
	return true
}

// startup performs the handshake: SSL/GSS refusals, CancelRequest
// forwarding, protocol version check, then AuthenticationOk (trust),
// ParameterStatus and BackendKeyData.
func (c *conn) startup() bool {
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.StartupTimeout))
	defer c.nc.SetReadDeadline(time.Time{})
	for {
		payload, err := readStartup(c.r, c.srv.cfg.MaxMessage)
		if err != nil {
			return false
		}
		m := &msgReader{buf: payload}
		switch code := m.int32(); code {
		case sslRequestCode, gssRequestCode:
			if _, err := c.nc.Write([]byte{'N'}); err != nil {
				return false
			}
		case cancelCode:
			pid := uint32(m.int32())
			secret := uint32(m.int32())
			if m.err == nil {
				c.srv.cancel(pid, secret)
			}
			return false
		case ProtocolVersion:
			// Startup parameters: key/value pairs until an empty key. We
			// accept any user (trust auth) and ignore the database name —
			// one engine, one namespace.
			for {
				k := m.string()
				if k == "" || m.err != nil {
					break
				}
				m.string()
			}
			if m.err != nil {
				c.sendError(CodeProtocolViolation, "malformed startup packet")
				c.flush()
				return false
			}
			c.out.start(msgAuth)
			c.out.int32(0) // AuthenticationOk
			c.out.finish()
			for _, kv := range [][2]string{
				{"server_version", c.srv.cfg.ServerVersion},
				{"server_encoding", "UTF8"},
				{"client_encoding", "UTF8"},
				{"DateStyle", "ISO, YMD"},
				{"integer_datetimes", "on"},
				{"standard_conforming_strings", "on"},
			} {
				c.out.start(msgParameterStatus)
				c.out.string(kv[0])
				c.out.string(kv[1])
				c.out.finish()
			}
			c.out.start(msgBackendKeyData)
			c.out.uint32(c.pid)
			c.out.uint32(c.secret)
			c.out.finish()
			return true
		default:
			c.sendError(CodeFeatureNotSupported, fmt.Sprintf("unsupported protocol version %d", code))
			c.flush()
			return false
		}
	}
}

// --- simple query protocol -------------------------------------------------

func (c *conn) simpleQuery(sql string) {
	t0 := time.Now()
	stmts := splitStatements(sql)
	if len(stmts) == 0 {
		c.out.start(msgEmptyQuery)
		c.out.finish()
		return
	}
	for _, stmt := range stmts {
		if !c.runStatement(stmt) {
			break // error already sent; abort the rest of the batch
		}
	}
	c.srv.obs.Histogram("pgwire_query_ms", "proto=simple").ObserveSince(t0)
}

// runStatement executes one simple-protocol statement. Returns false if
// an ErrorResponse was sent (aborting the rest of the batch).
func (c *conn) runStatement(sql string) bool {
	word := firstKeyword(sql)
	switch c.gateStatement(word) {
	case gateErr:
		return false
	case gateHandled:
		return true
	}
	if err := c.srv.admit(); err != nil {
		c.queryError(err)
		return false
	}
	c.monStart(sql)
	res, err := c.sess.Query(sql)
	c.monEnd()
	c.srv.release()
	if err != nil {
		c.queryError(err)
		return false
	}
	c.srv.obs.Counter("pgwire_queries_total", "result=ok").Inc()
	if isRowStatement(word) {
		c.sendRowDescription(res)
		n := c.sendDataRows(res, 0, 0)
		c.sendCommandComplete(commandTag(word, res, n))
	} else {
		c.sendCommandComplete(commandTag(word, res, 0))
	}
	return true
}

// gateStatement outcomes.
type gateResult int

const (
	gateOK      gateResult = iota // proceed to the engine
	gateHandled                   // fully handled here, response written
	gateErr                       // ErrorResponse written
)

// gateStatement enforces cancel and failed-transaction state before a
// statement reaches the engine. COMMIT in a failed transaction rolls back
// (reported as ROLLBACK), exactly like Postgres.
func (c *conn) gateStatement(word string) gateResult {
	if c.canceled.Swap(false) {
		c.queryError(wireErr(CodeQueryCanceled, "canceling statement due to user request"))
		return gateErr
	}
	if !c.txFailed {
		return gateOK
	}
	switch word {
	case "ROLLBACK", "COMMIT", "END":
		if err := c.sess.Rollback(); err != nil {
			c.queryError(err)
			return gateErr
		}
		c.txFailed = false
		c.srv.obs.Counter("pgwire_queries_total", "result=ok").Inc()
		c.sendCommandComplete("ROLLBACK")
		return gateHandled
	default:
		c.queryError(wireErr(CodeFailedTxn,
			"current transaction is aborted, commands ignored until end of transaction block"))
		return gateErr
	}
}

// queryError sends a coded ErrorResponse and records the failed-txn state.
func (c *conn) queryError(err error) {
	if c.sess != nil && c.sess.InTxn() {
		c.txFailed = true
	}
	c.srv.obs.Counter("pgwire_queries_total", "result=error").Inc()
	c.sendError(sqlstateFor(err), err.Error())
}

// --- extended query protocol -----------------------------------------------

// extError sends an ErrorResponse and enters skip-until-Sync.
func (c *conn) extError(code, msg string) {
	c.skipSync = true
	c.sendError(code, msg)
}

// extQueryError is extError for an engine error (tracks failed txn).
func (c *conn) extQueryError(err error) {
	c.skipSync = true
	c.queryError(err)
}

func (c *conn) handleParse(m *msgReader) {
	name := m.string()
	sql := m.string()
	noids := m.int16()
	for i := 0; i < noids; i++ {
		m.int32() // declared parameter OIDs: accepted, not needed (text inference)
	}
	if m.err != nil {
		c.extError(CodeProtocolViolation, m.err.Error())
		return
	}
	if name != "" {
		if _, dup := c.stmts[name]; dup {
			c.extError(CodeDuplicatePrepared, fmt.Sprintf("prepared statement %q already exists", name))
			return
		}
		if len(c.stmts)+len(c.portals) >= c.srv.cfg.MaxStmts {
			c.extError(CodeAdmissionRejected,
				fmt.Sprintf("per-connection statement limit (%d) reached", c.srv.cfg.MaxStmts))
			return
		}
	}
	// Validate eagerly when the backend can: a broken statement must fail
	// at Parse, not surface later as a surprising Execute error.
	if d, ok := c.sess.(describer); ok && strings.TrimSpace(sql) != "" {
		if _, err := d.Describe(sql); err != nil {
			c.extQueryError(err)
			return
		}
	}
	np := countParams(sql)
	if noids > np {
		np = noids
	}
	c.stmts[name] = &prepStmt{sql: strings.TrimSpace(sql), nparams: np}
	c.out.start(msgParseComplete)
	c.out.finish()
}

func (c *conn) handleBind(m *msgReader) {
	portalName := m.string()
	stmtName := m.string()
	nfmt := m.int16()
	for i := 0; i < nfmt; i++ {
		if m.int16() == 1 {
			c.extError(CodeFeatureNotSupported, "binary parameter format not supported")
			return
		}
	}
	nparams := m.int16()
	if m.err != nil || nparams < 0 {
		c.extError(CodeProtocolViolation, "malformed Bind message")
		return
	}
	params := make([]value.Value, 0, nparams)
	for i := 0; i < nparams; i++ {
		n := m.int32()
		if n < 0 {
			params = append(params, value.Null)
			continue
		}
		b := m.bytes(n)
		if m.err != nil {
			break
		}
		params = append(params, inferParam(string(b)))
	}
	nrfmt := m.int16()
	for i := 0; i < nrfmt; i++ {
		if m.int16() == 1 {
			c.extError(CodeFeatureNotSupported, "binary result format not supported")
			return
		}
	}
	if m.err != nil {
		c.extError(CodeProtocolViolation, m.err.Error())
		return
	}
	st, ok := c.stmts[stmtName]
	if !ok {
		c.extError(CodeInvalidStatement, fmt.Sprintf("prepared statement %q does not exist", stmtName))
		return
	}
	if portalName != "" && len(c.stmts)+len(c.portals) >= c.srv.cfg.MaxStmts {
		c.extError(CodeAdmissionRejected,
			fmt.Sprintf("per-connection statement limit (%d) reached", c.srv.cfg.MaxStmts))
		return
	}
	c.portals[portalName] = &portal{stmt: st, params: params}
	c.out.start(msgBindComplete)
	c.out.finish()
}

// run executes a portal's statement once, caching result or error.
func (c *conn) run(p *portal) {
	if p.ran {
		return
	}
	p.ran = true
	if err := c.srv.admit(); err != nil {
		p.err = err
		return
	}
	t0 := time.Now()
	c.monStart(p.stmt.sql)
	p.res, p.err = c.sess.Query(p.stmt.sql, p.params...)
	c.monEnd()
	c.srv.release()
	c.srv.obs.Histogram("pgwire_query_ms", "proto=extended").ObserveSince(t0)
}

func (c *conn) handleDescribe(m *msgReader) {
	kind := m.byte()
	name := m.string()
	if m.err != nil {
		c.extError(CodeProtocolViolation, m.err.Error())
		return
	}
	switch kind {
	case 'S':
		st, ok := c.stmts[name]
		if !ok {
			c.extError(CodeInvalidStatement, fmt.Sprintf("prepared statement %q does not exist", name))
			return
		}
		c.out.start(msgParamDescription)
		c.out.int16(st.nparams)
		for i := 0; i < st.nparams; i++ {
			c.out.int32(oidText)
		}
		c.out.finish()
		c.describeStatementRows(st)
	case 'P':
		p, ok := c.portals[name]
		if !ok {
			c.extError(CodeInvalidCursor, fmt.Sprintf("portal %q does not exist", name))
			return
		}
		if !isRowStatement(firstKeyword(p.stmt.sql)) {
			c.out.start(msgNoData)
			c.out.finish()
			return
		}
		if word := firstKeyword(p.stmt.sql); word == "SELECT" || word == "EXPLAIN" {
			// Row shape without execution when the session supports
			// plan-only describe; otherwise run now and cache.
			if cols, ok := c.describeCols(p.stmt.sql); ok {
				c.sendRowDescriptionCols(cols, nil)
				return
			}
		}
		c.run(p)
		if p.err != nil {
			c.extQueryError(p.err)
			return
		}
		c.sendRowDescription(p.res)
	default:
		c.extError(CodeProtocolViolation, fmt.Sprintf("Describe kind %q", kind))
	}
}

// describer is the optional plan-only describe surface (sqlexec sessions
// implement it; other backends fall back to execute-and-cache).
type describer interface {
	Describe(sql string) ([]string, error)
}

func (c *conn) describeCols(sql string) ([]string, bool) {
	d, ok := c.sess.(describer)
	if !ok {
		return nil, false
	}
	cols, err := d.Describe(sql)
	if err != nil || cols == nil {
		return nil, false
	}
	return cols, true
}

func (c *conn) describeStatementRows(st *prepStmt) {
	if !isRowStatement(firstKeyword(st.sql)) {
		c.out.start(msgNoData)
		c.out.finish()
		return
	}
	if cols, ok := c.describeCols(st.sql); ok {
		c.sendRowDescriptionCols(cols, nil)
		return
	}
	c.out.start(msgNoData)
	c.out.finish()
}

func (c *conn) handleExecute(m *msgReader) {
	name := m.string()
	maxRows := m.int32()
	if m.err != nil {
		c.extError(CodeProtocolViolation, m.err.Error())
		return
	}
	p, ok := c.portals[name]
	if !ok {
		c.extError(CodeInvalidCursor, fmt.Sprintf("portal %q does not exist", name))
		return
	}
	word := firstKeyword(p.stmt.sql)
	switch c.gateStatement(word) {
	case gateErr:
		c.skipSync = true
		return
	case gateHandled:
		return
	}
	c.run(p)
	if p.err != nil {
		c.extQueryError(p.err)
		return
	}
	if !p.counted {
		p.counted = true
		c.srv.obs.Counter("pgwire_queries_total", "result=ok").Inc()
	}
	if isRowStatement(word) {
		sent := c.sendDataRows(p.res, p.pos, maxRows)
		p.pos += sent
		if maxRows > 0 && p.pos < len(p.res.Rows) {
			c.out.start(msgPortalSuspended)
			c.out.finish()
			return
		}
		c.sendCommandComplete(commandTag(word, p.res, p.pos))
	} else {
		c.sendCommandComplete(commandTag(word, p.res, 0))
	}
}

func (c *conn) handleClose(m *msgReader) {
	kind := m.byte()
	name := m.string()
	if m.err != nil {
		c.extError(CodeProtocolViolation, m.err.Error())
		return
	}
	switch kind {
	case 'S':
		delete(c.stmts, name)
	case 'P':
		delete(c.portals, name)
	default:
		c.extError(CodeProtocolViolation, fmt.Sprintf("Close kind %q", kind))
		return
	}
	c.out.start(msgCloseComplete)
	c.out.finish()
}

// --- response encoding -----------------------------------------------------

// sendRowDescription derives field types from the first rows of the
// result (text format; OIDs by value kind, text when a column is all
// NULL).
func (c *conn) sendRowDescription(res *sqlexec.Result) {
	kinds := make([]value.Kind, len(res.Cols))
	for _, row := range res.Rows {
		missing := false
		for i := range kinds {
			if kinds[i] == value.KindNull && i < len(row) {
				kinds[i] = row[i].K
			}
			if kinds[i] == value.KindNull {
				missing = true
			}
		}
		if !missing {
			break
		}
	}
	c.sendRowDescriptionCols(res.Cols, kinds)
}

func (c *conn) sendRowDescriptionCols(cols []string, kinds []value.Kind) {
	c.out.start(msgRowDescription)
	c.out.int16(len(cols))
	for i, name := range cols {
		k := value.KindNull
		if i < len(kinds) {
			k = kinds[i]
		}
		oid, size := oidOf(k)
		c.out.string(name)
		c.out.int32(0) // table OID
		c.out.int16(0) // attribute number
		c.out.int32(oid)
		c.out.int16(size)
		c.out.int32(-1) // type modifier
		c.out.int16(0)  // text format
	}
	c.out.finish()
}

func oidOf(k value.Kind) (oid, size int) {
	switch k {
	case value.KindInt:
		return oidInt8, 8
	case value.KindFloat:
		return oidFloat8, 8
	case value.KindBool:
		return oidBool, 1
	case value.KindTime:
		return oidTimestamp, 8
	default:
		return oidText, -1
	}
}

// sendDataRows streams rows [from, from+max) in text format; max <= 0
// means all. Returns the number of rows sent.
func (c *conn) sendDataRows(res *sqlexec.Result, from, max int) int {
	end := len(res.Rows)
	if max > 0 && from+max < end {
		end = from + max
	}
	for _, row := range res.Rows[from:end] {
		c.out.start(msgDataRow)
		c.out.int16(len(res.Cols))
		for i := range res.Cols {
			if i >= len(row) || row[i].IsNull() {
				c.out.int32(-1)
				continue
			}
			s := encodeText(row[i])
			c.out.int32(len(s))
			c.out.raw([]byte(s))
		}
		c.out.finish()
	}
	return end - from
}

// encodeText renders a value in PostgreSQL text format: booleans as t/f,
// everything else via the engine's canonical rendering.
func encodeText(v value.Value) string {
	if v.K == value.KindBool {
		if v.AsBool() {
			return "t"
		}
		return "f"
	}
	return v.AsString()
}

func (c *conn) sendCommandComplete(tag string) {
	c.out.start(msgCommandComplete)
	c.out.string(tag)
	c.out.finish()
}

func (c *conn) sendReady() {
	status := byte(txnIdle)
	if c.txFailed {
		status = txnFailed
	} else if c.sess != nil && c.sess.InTxn() {
		status = txnOpen
	}
	c.monMu.Lock()
	c.monTx = status
	c.monMu.Unlock()
	c.out.start(msgReadyForQuery)
	c.out.byte(status)
	c.out.finish()
}

// sendError emits an ErrorResponse with severity, SQLSTATE and message.
func (c *conn) sendError(code, msg string) {
	c.out.start(msgErrorResponse)
	c.out.byte('S')
	c.out.string("ERROR")
	c.out.byte('V')
	c.out.string("ERROR")
	c.out.byte('C')
	c.out.string(code)
	c.out.byte('M')
	c.out.string(msg)
	c.out.byte(0)
	c.out.finish()
}

func (c *conn) flush() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return fmt.Errorf("pgwire: connection closed")
	}
	return c.out.w.Flush()
}

// drainIfIdle retires an idle connection during graceful shutdown: the
// owning goroutine is blocked in a read with no response owed, so a coded
// error plus close drops nothing. Busy connections are left to finish and
// notice the drain flag at their loop boundary.
func (c *conn) drainIfIdle() {
	if c.busy.Load() {
		return
	}
	c.writeMu.Lock()
	if !c.closed {
		// Best-effort direct write: the reader goroutine is parked, the
		// buffered writer is empty between commands.
		c.sendError(CodeAdminShutdown, "server is shutting down")
		c.out.w.Flush()
		c.closed = true
		c.nc.Close()
		c.srv.obs.Counter("pgwire_drained_conns_total").Inc()
	}
	c.writeMu.Unlock()
}

// forceClose tears the socket down immediately.
func (c *conn) forceClose() {
	c.writeMu.Lock()
	if !c.closed {
		c.closed = true
		c.nc.Close()
	}
	c.writeMu.Unlock()
}

// --- statement helpers -----------------------------------------------------

// splitStatements splits a simple-query string on top-level semicolons
// (outside quotes and comments), dropping empty statements.
func splitStatements(sql string) []string {
	var out []string
	start := 0
	for i := 0; i < len(sql); i++ {
		switch sql[i] {
		case '\'':
			for i++; i < len(sql); i++ {
				if sql[i] == '\'' {
					if i+1 < len(sql) && sql[i+1] == '\'' {
						i++
						continue
					}
					break
				}
			}
		case '"':
			for i++; i < len(sql) && sql[i] != '"'; i++ {
			}
		case '-':
			if i+1 < len(sql) && sql[i+1] == '-' {
				for ; i < len(sql) && sql[i] != '\n'; i++ {
				}
			}
		case ';':
			if s := strings.TrimSpace(sql[start:i]); s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(sql[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// firstKeyword returns the statement's leading keyword, upper-cased.
func firstKeyword(sql string) string {
	sql = strings.TrimSpace(sql)
	end := len(sql)
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_') {
			end = i
			break
		}
	}
	return strings.ToUpper(sql[:end])
}

// isRowStatement reports whether a statement produces a row set on the
// wire (RowDescription + DataRows) rather than just a command tag.
func isRowStatement(word string) bool {
	switch word {
	case "SELECT", "EXPLAIN", "VALUES", "SHOW", "WITH":
		return true
	default:
		return false
	}
}

// commandTag builds the CommandComplete tag. DML statements report the
// count the engine returned as their single result cell.
func commandTag(word string, res *sqlexec.Result, rows int) string {
	switch word {
	case "SELECT", "EXPLAIN", "VALUES", "SHOW", "WITH":
		return "SELECT " + strconv.Itoa(rows)
	case "INSERT":
		return "INSERT 0 " + strconv.FormatInt(resultCount(res), 10)
	case "UPDATE":
		return "UPDATE " + strconv.FormatInt(resultCount(res), 10)
	case "DELETE":
		return "DELETE " + strconv.FormatInt(resultCount(res), 10)
	case "BEGIN":
		return "BEGIN"
	case "COMMIT", "END":
		return "COMMIT"
	case "ROLLBACK":
		return "ROLLBACK"
	case "CREATE", "DROP", "MERGE":
		return word
	case "":
		return "OK"
	default:
		return word
	}
}

// resultCount extracts the affected-row count from a DML result
// (engine shape: one row, one integer cell).
func resultCount(res *sqlexec.Result) int64 {
	if res != nil && len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		return res.Rows[0][0].AsInt()
	}
	return 0
}

// inferParam converts a text-format parameter to an engine value:
// integers and floats by shape, everything else as a string (the engine
// coerces at comparison and insert boundaries).
func inferParam(s string) value.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return value.Float(f)
	}
	switch s {
	case "t", "true", "TRUE":
		return value.Bool(true)
	case "f", "false", "FALSE":
		return value.Bool(false)
	}
	return value.String(s)
}
