package pgwire

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Config shapes a wire server. Zero values take the documented defaults.
type Config struct {
	Addr string // listen address, e.g. ":5432" or "127.0.0.1:0"

	// MaxConns bounds concurrently open connections; startups beyond it
	// are refused with SQLSTATE 53300 (default 2000).
	MaxConns int
	// Workers bounds statements executing at once across all connections
	// — the admission-control slot pool (default 4×GOMAXPROCS).
	Workers int
	// QueueDepth bounds statements waiting for a slot; beyond it the
	// statement is rejected with SQLSTATE 53400 instead of queueing
	// unboundedly (default 4×Workers).
	QueueDepth int
	// MaxStmts bounds named prepared statements plus portals per
	// connection (default 256).
	MaxStmts int
	// MaxMessage bounds one protocol frame (default 16 MiB).
	MaxMessage int
	// StartupTimeout bounds the handshake read (default 10s).
	StartupTimeout time.Duration

	// Obs receives the pgwire_* metrics; nil disables instrumentation
	// (all stats types are nil-safe). Tracer is reserved for future
	// wire-level spans; statement spans come from the engine itself.
	Obs    *stats.Registry
	Tracer *stats.Tracer

	// ServerVersion is reported via ParameterStatus (default "13.0-soe").
	ServerVersion string
}

func (c *Config) fill() {
	if c.MaxConns <= 0 {
		c.MaxConns = 2000
	}
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 256
	}
	if c.MaxMessage <= 0 {
		c.MaxMessage = DefaultMaxMessage
	}
	if c.StartupTimeout <= 0 {
		c.StartupTimeout = 10 * time.Second
	}
	if c.ServerVersion == "" {
		c.ServerVersion = "13.0-soe"
	}
}

// Server is a PostgreSQL v3 wire front end over a Backend.
type Server struct {
	cfg     Config
	backend Backend
	ln      net.Listener

	slots    chan struct{} // admission worker slots
	queued   atomic.Int64  // statements waiting for a slot
	draining atomic.Bool
	done     chan struct{} // closed on Shutdown/Close: unblocks queued waiters

	mu     sync.Mutex
	conns  map[uint32]*conn // backend pid -> connection (cancel + drain)
	nextID uint32
	wg     sync.WaitGroup

	obs *stats.Registry
}

// Serve listens on cfg.Addr and accepts connections until Shutdown or
// Close. It returns once the listener is live, so callers can read Addr()
// immediately (":0" resolves to the bound port).
func Serve(backend Backend, cfg Config) (*Server, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("pgwire: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:     cfg,
		backend: backend,
		ln:      ln,
		slots:   make(chan struct{}, cfg.Workers),
		done:    make(chan struct{}),
		conns:   map[uint32]*conn{},
		obs:     cfg.Obs,
	}
	// An engine-backed server observes itself: its connection table joins
	// the engine's sys schema, queryable over the very protocol it serves.
	if eb, ok := backend.(EngineBackend); ok {
		s.RegisterMonitoring(eb.Engine.SysViews())
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Draining reports whether the server is in graceful shutdown — the
// /healthz readiness signal.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		n := len(s.conns)
		s.nextID++
		pid := s.nextID
		s.mu.Unlock()
		if s.draining.Load() {
			go refuseStartup(nc, CodeCannotConnectNow, "server is draining")
			s.obs.Counter("pgwire_connections_rejected_total", "reason=draining").Inc()
			continue
		}
		if n >= s.cfg.MaxConns {
			go refuseStartup(nc, CodeTooManyConnections, "too many connections")
			s.obs.Counter("pgwire_connections_rejected_total", "reason=max_conns").Inc()
			continue
		}
		c := newConn(s, nc, pid, randSecret())
		s.mu.Lock()
		s.conns[pid] = c
		s.obs.Gauge("pgwire_connections_open").Set(float64(len(s.conns)))
		s.mu.Unlock()
		s.obs.Counter("pgwire_connections_total").Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.dropConn(pid)
		}()
	}
}

func (s *Server) dropConn(pid uint32) {
	s.mu.Lock()
	delete(s.conns, pid)
	s.obs.Gauge("pgwire_connections_open").Set(float64(len(s.conns)))
	s.mu.Unlock()
}

// cancel delivers a CancelRequest: flag the target connection so its next
// statement boundary fails with 57014. Secrets must match; a miss is
// silently ignored exactly like real Postgres.
func (s *Server) cancel(pid, secret uint32) {
	s.mu.Lock()
	c := s.conns[pid]
	s.mu.Unlock()
	if c != nil && c.secret == secret {
		c.canceled.Store(true)
		s.obs.Counter("pgwire_cancels_total").Inc()
	}
}

// errAdmission is returned when the wait queue is full.
var errAdmission = wireErr(CodeAdmissionRejected, "statement queue full, admission rejected")

// admit acquires a worker slot, waiting in the bounded queue. A full
// queue rejects immediately — overload is an error the client sees, not
// a hang — and shutdown unblocks waiters.
func (s *Server) admit() error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if n := s.queued.Add(1); n > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.obs.Counter("pgwire_admission_rejections_total").Inc()
		return errAdmission
	}
	s.obs.Gauge("pgwire_queue_depth").Set(float64(s.queued.Load()))
	defer func() {
		s.queued.Add(-1)
		s.obs.Gauge("pgwire_queue_depth").Set(float64(s.queued.Load()))
	}()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-s.done:
		return wireErr(CodeAdminShutdown, "server is shutting down")
	}
}

func (s *Server) release() { <-s.slots }

// Shutdown drains gracefully: new startups are refused, idle connections
// are told 57P01 and closed, busy connections finish their in-flight
// statement (and extended-protocol batch through Sync) and are then
// closed. When ctx expires before the drain completes, remaining
// connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("pgwire: already shut down")
	}
	s.obs.Gauge("pgwire_draining").Set(1)
	s.ln.Close()
	close(s.done)

	// Nudge idle connections: they are blocked in a read with no request
	// in flight, so an ErrorResponse + close drops zero responses.
	s.mu.Lock()
	for _, c := range s.conns {
		c.drainIfIdle()
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, c := range s.conns {
			c.forceClose()
		}
		s.mu.Unlock()
		<-finished
		return ctx.Err()
	}
}

// Close shuts down immediately: listener and every connection.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

// refuseStartup answers the handshake of a connection that will not be
// admitted: complete SSL negotiation if offered, then send a coded
// ErrorResponse and close. The client sees a reason, not a reset.
func refuseStartup(nc net.Conn, code, msg string) {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	c := newConn(nil, nc, 0, 0)
	for {
		payload, err := readStartup(c.r, DefaultMaxMessage)
		if err != nil {
			return
		}
		m := &msgReader{buf: payload}
		switch m.int32() {
		case sslRequestCode, gssRequestCode:
			nc.Write([]byte{'N'})
			continue
		case cancelCode:
			return
		}
		c.sendError(code, msg)
		c.out.w.Flush()
		return
	}
}

func randSecret() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint32(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint32(b[:])
}
