package pgwire

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// This file is a minimal text-protocol PostgreSQL client — the libpq
// subset the loadgen harness and the end-to-end tests drive the server
// with. It shares only the frame codecs with the server; the message
// flows are written independently against the v3 protocol spec, so the
// tests exercise real protocol agreement, not mirrored assumptions.

// ClientConfig shapes a client connection.
type ClientConfig struct {
	Addr     string
	User     string        // startup parameter; any value is trusted
	Database string        // startup parameter; ignored by the server
	Timeout  time.Duration // dial + handshake timeout (default 10s)
}

// Conn is one client connection.
type Conn struct {
	nc  net.Conn
	r   *bufio.Reader
	out *msgWriter

	backendPID    uint32
	backendSecret uint32
	addr          string
	txStatus      byte
	params        map[string]string // ParameterStatus pairs from startup
}

// ClientResult is one statement's decoded response: column names, rows in
// text format (nil cell = NULL), and the CommandComplete tag.
type ClientResult struct {
	Cols []string
	Rows [][]*string
	Tag  string
}

// Get returns row i, column j as a string ("" for NULL) — test sugar.
func (r *ClientResult) Get(i, j int) string {
	if i >= len(r.Rows) || j >= len(r.Rows[i]) || r.Rows[i][j] == nil {
		return ""
	}
	return *r.Rows[i][j]
}

// Dial connects and performs the startup handshake (trust auth).
func Dial(cfg ClientConfig) (*Conn, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.User == "" {
		cfg.User = "soe"
	}
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("pgwire: dial %s: %w", cfg.Addr, err)
	}
	c := &Conn{
		nc:     nc,
		r:      bufio.NewReaderSize(nc, 8192),
		out:    &msgWriter{w: bufio.NewWriterSize(nc, 8192)},
		addr:   cfg.Addr,
		params: map[string]string{},
	}
	nc.SetDeadline(time.Now().Add(cfg.Timeout))
	defer nc.SetDeadline(time.Time{})

	// StartupMessage: length-prefixed, no type byte.
	c.out.start(0)
	c.out.int32(ProtocolVersion)
	c.out.string("user")
	c.out.string(cfg.User)
	if cfg.Database != "" {
		c.out.string("database")
		c.out.string(cfg.Database)
	}
	c.out.byte(0)
	if err := c.finishStartup(); err != nil {
		nc.Close()
		return nil, err
	}

	// Handshake responses until ReadyForQuery.
	for {
		typ, payload, err := readFrame(c.r, DefaultMaxMessage)
		if err != nil {
			nc.Close()
			return nil, fmt.Errorf("pgwire: handshake: %w", err)
		}
		m := &msgReader{buf: payload}
		switch typ {
		case msgAuth:
			if code := m.int32(); code != 0 {
				nc.Close()
				return nil, fmt.Errorf("pgwire: unsupported auth method %d", code)
			}
		case msgParameterStatus:
			c.params[m.string()] = m.string()
		case msgBackendKeyData:
			c.backendPID = uint32(m.int32())
			c.backendSecret = uint32(m.int32())
		case msgReadyForQuery:
			c.txStatus = m.byte()
			return c, nil
		case msgErrorResponse:
			pgErr := decodeError(m)
			nc.Close()
			return nil, pgErr
		case msgNoticeResponse:
		default:
			nc.Close()
			return nil, fmt.Errorf("pgwire: unexpected handshake message %q", typ)
		}
	}
}

// finishStartup frames the untyped startup message.
func (c *Conn) finishStartup() error {
	buf := c.out.buf
	var hdr [4]byte
	n := len(buf) + 4
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	if _, err := c.out.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.out.w.Write(buf); err != nil {
		return err
	}
	return c.out.w.Flush()
}

// TxStatus returns the last ReadyForQuery status: 'I' idle, 'T' in
// transaction, 'E' failed transaction.
func (c *Conn) TxStatus() byte { return c.txStatus }

// Parameter returns a ParameterStatus value from the handshake.
func (c *Conn) Parameter(k string) string { return c.params[k] }

// BackendPID returns the server's backend key (for CancelRequest).
func (c *Conn) BackendPID() uint32 { return c.backendPID }

// Simple runs a simple-protocol query string (possibly multi-statement)
// and returns one result per statement. On server error the statements
// executed so far are returned with the error.
func (c *Conn) Simple(sql string) ([]*ClientResult, error) {
	c.out.start(msgQuery)
	c.out.string(sql)
	if err := c.out.finish(); err != nil {
		return nil, err
	}
	if err := c.out.w.Flush(); err != nil {
		return nil, err
	}
	var results []*ClientResult
	var cur *ClientResult
	var firstErr error
	for {
		typ, payload, err := readFrame(c.r, DefaultMaxMessage)
		if err != nil {
			if firstErr != nil {
				return results, firstErr
			}
			return results, fmt.Errorf("pgwire: read: %w", err)
		}
		m := &msgReader{buf: payload}
		switch typ {
		case msgRowDescription:
			cur = &ClientResult{Cols: decodeRowDescription(m)}
		case msgDataRow:
			if cur == nil {
				cur = &ClientResult{}
			}
			cur.Rows = append(cur.Rows, decodeDataRow(m))
		case msgCommandComplete:
			if cur == nil {
				cur = &ClientResult{}
			}
			cur.Tag = m.string()
			results = append(results, cur)
			cur = nil
		case msgEmptyQuery:
			results = append(results, &ClientResult{})
		case msgErrorResponse:
			if firstErr == nil {
				firstErr = decodeError(m)
			}
		case msgNoticeResponse:
		case msgReadyForQuery:
			c.txStatus = m.byte()
			return results, firstErr
		default:
			return results, fmt.Errorf("pgwire: unexpected message %q in simple query", typ)
		}
	}
}

// Query runs one statement through the extended protocol with text
// parameters: Parse(unnamed) + Bind + Describe(portal) + Execute + Sync.
// nil params are sent as NULL.
func (c *Conn) Query(sql string, params ...any) (*ClientResult, error) {
	if err := c.sendParse("", sql); err != nil {
		return nil, err
	}
	return c.bindExec("", params)
}

// Prepare creates a named prepared statement on the server.
func (c *Conn) Prepare(name, sql string) error {
	if err := c.sendParse(name, sql); err != nil {
		return err
	}
	if err := c.sync(); err != nil {
		return err
	}
	return c.drain(nil)
}

// ExecPrepared binds and executes a named prepared statement.
func (c *Conn) ExecPrepared(name string, params ...any) (*ClientResult, error) {
	return c.bindExec(name, params)
}

func (c *Conn) sendParse(name, sql string) error {
	c.out.start(msgParse)
	c.out.string(name)
	c.out.string(sql)
	c.out.int16(0) // no declared parameter OIDs
	return c.out.finish()
}

func (c *Conn) bindExec(stmt string, params []any) (*ClientResult, error) {
	c.out.start(msgBind)
	c.out.string("") // unnamed portal
	c.out.string(stmt)
	c.out.int16(0) // all-text parameter formats
	c.out.int16(len(params))
	for _, p := range params {
		if p == nil {
			c.out.int32(-1)
			continue
		}
		s := fmt.Sprint(p)
		c.out.int32(len(s))
		c.out.raw([]byte(s))
	}
	c.out.int16(0) // all-text result formats
	if err := c.out.finish(); err != nil {
		return nil, err
	}
	c.out.start(msgDescribe)
	c.out.byte('P')
	c.out.string("")
	if err := c.out.finish(); err != nil {
		return nil, err
	}
	c.out.start(msgExecute)
	c.out.string("")
	c.out.int32(0) // no row limit
	if err := c.out.finish(); err != nil {
		return nil, err
	}
	if err := c.sync(); err != nil {
		return nil, err
	}
	res := &ClientResult{}
	if err := c.drain(res); err != nil {
		return nil, err
	}
	return res, nil
}

func (c *Conn) sync() error {
	c.out.start(msgSync)
	if err := c.out.finish(); err != nil {
		return err
	}
	return c.out.w.Flush()
}

// drain consumes messages until ReadyForQuery, filling res (when non-nil)
// and returning the first ErrorResponse as *PGError.
func (c *Conn) drain(res *ClientResult) error {
	var firstErr error
	for {
		typ, payload, err := readFrame(c.r, DefaultMaxMessage)
		if err != nil {
			// A terminal error (e.g. 57P01 admin_shutdown) is followed by the
			// server closing the connection without ReadyForQuery; surface
			// the coded error rather than the EOF it caused.
			if firstErr != nil {
				return firstErr
			}
			return fmt.Errorf("pgwire: read: %w", err)
		}
		m := &msgReader{buf: payload}
		switch typ {
		case msgParseComplete, msgBindComplete, msgCloseComplete, msgNoData,
			msgPortalSuspended, msgParamDescription, msgNoticeResponse, msgEmptyQuery:
		case msgRowDescription:
			if res != nil {
				res.Cols = decodeRowDescription(m)
			}
		case msgDataRow:
			if res != nil {
				res.Rows = append(res.Rows, decodeDataRow(m))
			}
		case msgCommandComplete:
			if res != nil {
				res.Tag = m.string()
			}
		case msgErrorResponse:
			if firstErr == nil {
				firstErr = decodeError(m)
			}
		case msgReadyForQuery:
			c.txStatus = m.byte()
			return firstErr
		default:
			return fmt.Errorf("pgwire: unexpected message %q", typ)
		}
	}
}

// Cancel opens a fresh connection and issues a CancelRequest against this
// connection's backend key.
func (c *Conn) Cancel() error {
	nc, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	w := &msgWriter{w: bufio.NewWriter(nc)}
	w.start(0)
	w.int32(cancelCode)
	w.uint32(c.backendPID)
	w.uint32(c.backendSecret)
	buf := w.buf
	n := len(buf) + 4
	hdr := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	if _, err := nc.Write(append(hdr, buf...)); err != nil {
		return err
	}
	return nil
}

// Close sends Terminate and closes the socket.
func (c *Conn) Close() error {
	c.out.start(msgTerminate)
	c.out.finish()
	c.out.w.Flush()
	return c.nc.Close()
}

func decodeRowDescription(m *msgReader) []string {
	n := m.int16()
	cols := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cols = append(cols, m.string())
		m.int32() // table OID
		m.int16() // attnum
		m.int32() // type OID
		m.int16() // type size
		m.int32() // type modifier
		m.int16() // format
	}
	return cols
}

func decodeDataRow(m *msgReader) []*string {
	n := m.int16()
	row := make([]*string, 0, n)
	for i := 0; i < n; i++ {
		l := m.int32()
		if l < 0 {
			row = append(row, nil)
			continue
		}
		s := string(m.bytes(l))
		row = append(row, &s)
	}
	return row
}

func decodeError(m *msgReader) *PGError {
	e := &PGError{}
	for {
		f := m.byte()
		if f == 0 || m.err != nil {
			return e
		}
		v := m.string()
		switch f {
		case 'S':
			e.Severity = v
		case 'C':
			e.Code = v
		case 'M':
			e.Message = v
		}
	}
}
