package pgwire

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// Extended-protocol state-machine tests: malformed and truncated frames,
// Bind against a missing statement, and the skip-until-Sync semantics
// after an error in the middle of an extended batch. These drive the wire
// by hand so broken clients are representable.

// rawDial completes the startup handshake and returns the naked socket
// plus a buffered reader positioned after the first ReadyForQuery.
func rawDial(t *testing.T, srv *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.DialTimeout("tcp", srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	body := []byte{0, 3, 0, 0}
	body = append(body, "user\x00raw\x00\x00"...)
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(4+len(body)))
	copy(frame[4:], body)
	if _, err := nc.Write(frame); err != nil {
		t.Fatalf("startup write: %v", err)
	}
	r := bufio.NewReader(nc)
	for {
		typ, _, err := readFrame(r, DefaultMaxMessage)
		if err != nil {
			t.Fatalf("startup read: %v", err)
		}
		if typ == msgReadyForQuery {
			return nc, r
		}
	}
}

// writeMsg frames a typed message by hand.
func writeMsg(t *testing.T, nc net.Conn, typ byte, payload []byte) {
	t.Helper()
	frame := make([]byte, 5+len(payload))
	frame[0] = typ
	binary.BigEndian.PutUint32(frame[1:], uint32(4+len(payload)))
	copy(frame[5:], payload)
	if _, err := nc.Write(frame); err != nil {
		t.Fatalf("write %q: %v", typ, err)
	}
}

// collectUntilReady gathers message types until ReadyForQuery, recording
// the first error code seen.
func collectUntilReady(t *testing.T, r *bufio.Reader) (types []byte, code string) {
	t.Helper()
	for {
		typ, payload, err := readFrame(r, DefaultMaxMessage)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		types = append(types, typ)
		if typ == msgErrorResponse && code == "" {
			code = decodeError(&msgReader{buf: payload}).Code
		}
		if typ == msgReadyForQuery {
			return types, code
		}
	}
}

func TestStateBindMissingStatement(t *testing.T) {
	srv, _ := startServer(t, Config{})
	nc, r := rawDial(t, srv)

	// Bind portal "" to statement "nope" that was never parsed.
	var p []byte
	p = append(p, "\x00"...)     // portal name
	p = append(p, "nope\x00"...) // statement name
	p = append(p, 0, 0)          // no format codes
	p = append(p, 0, 0)          // no params
	p = append(p, 0, 0)          // no result formats
	writeMsg(t, nc, msgBind, p)
	writeMsg(t, nc, msgSync, nil)

	_, code := collectUntilReady(t, r)
	if code != CodeInvalidStatement {
		t.Fatalf("want 26000, got %q", code)
	}

	// The connection stays usable.
	writeMsg(t, nc, msgQuery, []byte("SELECT 1\x00"))
	types, code := collectUntilReady(t, r)
	if code != "" {
		t.Fatalf("follow-up query failed: %s", code)
	}
	if !containsByte(types, msgDataRow) {
		t.Fatalf("no data row in %q", types)
	}
}

func TestStateSkipUntilSync(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE s (a INT)`)
	eng.MustQuery(`INSERT INTO s VALUES (42)`)
	nc, r := rawDial(t, srv)

	// Batch: Parse(broken) / Bind / Execute / Parse(good) / Bind / Execute
	// / Sync. Everything between the failed Parse and Sync must be
	// discarded — exactly one ErrorResponse, no results from either
	// statement, then ReadyForQuery.
	parse := func(sql string) []byte {
		var p []byte
		p = append(p, "\x00"...) // unnamed statement
		p = append(p, sql...)
		p = append(p, 0)
		p = append(p, 0, 0) // no declared param types
		return p
	}
	bind := []byte("\x00\x00\x00\x00\x00\x00\x00\x00") // unnamed/unnamed, 0 formats, 0 params, 0 result formats
	exec := []byte("\x00\x00\x00\x00\x00")             // unnamed portal, no row limit

	writeMsg(t, nc, msgParse, parse("SELECT FROM WHERE"))
	writeMsg(t, nc, msgBind, bind)
	writeMsg(t, nc, msgExecute, exec)
	writeMsg(t, nc, msgParse, parse("SELECT a FROM s"))
	writeMsg(t, nc, msgBind, bind)
	writeMsg(t, nc, msgExecute, exec)
	writeMsg(t, nc, msgSync, nil)

	types, code := collectUntilReady(t, r)
	if code != CodeSyntaxError {
		t.Fatalf("want 42601, got %q", code)
	}
	errs := 0
	for _, typ := range types {
		switch typ {
		case msgErrorResponse:
			errs++
		case msgDataRow, msgCommandComplete, msgParseComplete, msgBindComplete:
			t.Fatalf("message %q leaked through skip-until-Sync (types %q)", typ, types)
		}
	}
	if errs != 1 {
		t.Fatalf("want exactly 1 ErrorResponse, got %d", errs)
	}

	// After Sync the state machine is clean: the same good batch runs.
	writeMsg(t, nc, msgParse, parse("SELECT a FROM s"))
	writeMsg(t, nc, msgBind, bind)
	writeMsg(t, nc, msgExecute, exec)
	writeMsg(t, nc, msgSync, nil)
	types, code = collectUntilReady(t, r)
	if code != "" {
		t.Fatalf("post-Sync batch failed: %s", code)
	}
	if !containsByte(types, msgDataRow) {
		t.Fatalf("no data row after recovery in %q", types)
	}
}

func TestStateTruncatedFrame(t *testing.T) {
	srv, _ := startServer(t, Config{})
	nc, r := rawDial(t, srv)

	// A Bind whose declared payload runs out before the fields do: the
	// reader must fail it as a protocol violation, not hang or crash.
	writeMsg(t, nc, msgBind, []byte{'p'}) // 1 byte: unterminated portal name
	writeMsg(t, nc, msgSync, nil)
	_, code := collectUntilReady(t, r)
	if code != CodeProtocolViolation {
		t.Fatalf("want 08P01, got %q", code)
	}
}

func TestStateUnknownMessageType(t *testing.T) {
	srv, _ := startServer(t, Config{})
	nc, r := rawDial(t, srv)

	writeMsg(t, nc, 'z', []byte("junk"))
	typ, payload, err := readFrame(r, DefaultMaxMessage)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != msgErrorResponse {
		t.Fatalf("want ErrorResponse, got %q", typ)
	}
	if got := decodeError(&msgReader{buf: payload}).Code; got != CodeProtocolViolation {
		t.Fatalf("want 08P01, got %q", got)
	}
	// The server closes after a protocol violation.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, _, err := readFrame(r, DefaultMaxMessage); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			t.Fatalf("want EOF after protocol violation, got %v", err)
		}
	}
}

func TestStateOversizeFrame(t *testing.T) {
	srv, _ := startServer(t, Config{MaxMessage: 1 << 10})
	nc, r := rawDial(t, srv)

	// Declared length far beyond the server's limit: reject, don't allocate.
	header := []byte{msgQuery, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(header[1:], 1<<30)
	if _, err := nc.Write(header); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	sawErr := false
	for {
		typ, payload, err := readFrame(r, DefaultMaxMessage)
		if err != nil {
			break // closed — acceptable
		}
		if typ == msgErrorResponse {
			sawErr = true
			if got := decodeError(&msgReader{buf: payload}).Code; got != CodeProtocolViolation {
				t.Fatalf("want 08P01, got %q", got)
			}
		}
	}
	if !sawErr {
		t.Fatal("no ErrorResponse before close")
	}
}

func TestStateBadStartupLength(t *testing.T) {
	srv, _ := startServer(t, Config{})
	nc, err := net.DialTimeout("tcp", srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// Startup frame claiming a 2-byte total length: invalid (min is 8).
	if _, err := nc.Write([]byte{0, 0, 0, 2}); err != nil {
		t.Fatalf("write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := nc.Read(buf); err != nil {
			return // server hung up, as it must
		}
	}
}

func TestStateFlushWithoutSync(t *testing.T) {
	srv, eng := startServer(t, Config{})
	eng.MustQuery(`CREATE TABLE f (a INT)`)
	nc, r := rawDial(t, srv)

	// Parse + Flush must deliver ParseComplete without a Sync.
	var p []byte
	p = append(p, "st\x00"...)
	p = append(p, "SELECT a FROM f\x00"...)
	p = append(p, 0, 0)
	writeMsg(t, nc, msgParse, p)
	writeMsg(t, nc, msgFlush, nil)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	typ, _, err := readFrame(r, DefaultMaxMessage)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != msgParseComplete {
		t.Fatalf("want ParseComplete after Flush, got %q", typ)
	}
}

func containsByte(s []byte, b byte) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}
