package pgwire

import (
	"sort"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// sys.m_connections: the wire front end's live connection table, served
// through the engine's virtual-view provider so any SQL client can see
// who is connected, what they are running and their transaction state —
// the pgwire half of HANA's M_CONNECTIONS. Serve wires this up
// automatically for EngineBackend servers; other backends call
// RegisterMonitoring themselves.

// RegisterMonitoring publishes this server's connection table as
// sys.m_connections in the given view catalog. Each scan takes a
// consistent snapshot of the connection registry.
func (s *Server) RegisterMonitoring(sys *sqlexec.SysCatalog) {
	schema := columnstore.Schema{
		{Name: "pid", Kind: value.KindInt},
		{Name: "remote", Kind: value.KindString},
		{Name: "state", Kind: value.KindString},
		{Name: "txn_status", Kind: value.KindString},
		{Name: "statement", Kind: value.KindString},
		{Name: "statements", Kind: value.KindInt},
		{Name: "connected", Kind: value.KindTime},
	}
	sys.Register("sys.m_connections", schema, func() ([]value.Row, error) {
		s.mu.Lock()
		conns := make([]*conn, 0, len(s.conns))
		for _, c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		sort.Slice(conns, func(i, j int) bool { return conns[i].pid < conns[j].pid })
		rows := make([]value.Row, 0, len(conns))
		for _, c := range conns {
			state := "idle"
			if c.busy.Load() {
				state = "active"
			}
			c.monMu.Lock()
			stmt, count, tx := c.monStmt, c.monCount, c.monTx
			c.monMu.Unlock()
			rows = append(rows, value.Row{
				value.Int(int64(c.pid)),
				value.String(c.nc.RemoteAddr().String()),
				value.String(state),
				value.String(txnStatusName(tx)),
				value.String(stmt),
				value.Int(count),
				value.Time(c.connected),
			})
		}
		return rows, nil
	})
}

func txnStatusName(b byte) string {
	switch b {
	case txnOpen:
		return "open"
	case txnFailed:
		return "failed"
	default:
		return "idle"
	}
}
