// Package pgwire is the ecosystem's TCP front end: a PostgreSQL v3
// wire-protocol server mapped onto sqlexec sessions, so any off-the-shelf
// libpq-compatible client (psql, lib/pq, pgx, JDBC) can drive the engine
// over a real socket. It implements the startup handshake (trust auth),
// the simple query protocol, the extended Parse/Bind/Describe/Execute/
// Sync flow with named prepared statements and portals, CancelRequest via
// backend keys, text-format result encoding for every value kind, and
// SQLSTATE-coded ErrorResponses — the E19 never-bare-error invariant
// extended to the wire boundary. An admission-control layer (bounded
// worker slots with a bounded wait queue, per-connection statement
// limits, graceful drain) keeps overload an explicit rejection instead of
// a hang, and everything is instrumented through the stats registry so it
// lands in the Prometheus exposition.
//
// This file holds the protocol layer shared by server and client: frame
// codecs, message type bytes, and the reader/writer buffers.
package pgwire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Protocol version and special startup codes (first frame has no type
// byte; it is discriminated by this int32 after the length).
const (
	ProtocolVersion = 196608   // 3.0
	sslRequestCode  = 80877103 // SSLRequest: answer 'N', we speak cleartext
	cancelCode      = 80877102 // CancelRequest: pid + secret follow
	gssRequestCode  = 80877104 // GSSENCRequest: answer 'N' like SSLRequest
)

// Backend (server → client) message type bytes.
const (
	msgAuth             = 'R'
	msgParameterStatus  = 'S'
	msgBackendKeyData   = 'K'
	msgReadyForQuery    = 'Z'
	msgRowDescription   = 'T'
	msgDataRow          = 'D'
	msgCommandComplete  = 'C'
	msgEmptyQuery       = 'I'
	msgErrorResponse    = 'E'
	msgNoticeResponse   = 'N'
	msgParseComplete    = '1'
	msgBindComplete     = '2'
	msgCloseComplete    = '3'
	msgParamDescription = 't'
	msgNoData           = 'n'
	msgPortalSuspended  = 's'
)

// Frontend (client → server) message type bytes.
const (
	msgQuery     = 'Q'
	msgParse     = 'P'
	msgBind      = 'B'
	msgDescribe  = 'D'
	msgExecute   = 'E'
	msgClose     = 'C'
	msgFlush     = 'H'
	msgSync      = 'S'
	msgTerminate = 'X'
	msgFuncCall  = 'F'
)

// Transaction status bytes carried by ReadyForQuery.
const (
	txnIdle   = 'I'
	txnOpen   = 'T'
	txnFailed = 'E'
)

// DefaultMaxMessage bounds one frame; anything longer is a protocol
// violation (a malicious or corrupt length prefix must not allocate GBs).
const DefaultMaxMessage = 16 << 20

// Type OIDs used in RowDescription / ParameterDescription, the subset of
// pg_type the value model needs.
const (
	oidBool      = 16
	oidInt8      = 20
	oidText      = 25
	oidFloat8    = 701
	oidTimestamp = 1114
)

// msgReader decodes one frame into sequential field reads. Reads past the
// end return zero values and latch err, so handlers can decode a whole
// message and check truncation once.
type msgReader struct {
	buf []byte
	pos int
	err error
}

func (m *msgReader) truncated() {
	if m.err == nil {
		m.err = fmt.Errorf("pgwire: truncated message (len %d)", len(m.buf))
	}
}

func (m *msgReader) byte() byte {
	if m.pos+1 > len(m.buf) {
		m.truncated()
		return 0
	}
	b := m.buf[m.pos]
	m.pos++
	return b
}

func (m *msgReader) int16() int {
	if m.pos+2 > len(m.buf) {
		m.truncated()
		return 0
	}
	v := int(int16(binary.BigEndian.Uint16(m.buf[m.pos:])))
	m.pos += 2
	return v
}

func (m *msgReader) int32() int {
	if m.pos+4 > len(m.buf) {
		m.truncated()
		return 0
	}
	v := int(int32(binary.BigEndian.Uint32(m.buf[m.pos:])))
	m.pos += 4
	return v
}

func (m *msgReader) string() string {
	if m.err != nil {
		return ""
	}
	for i := m.pos; i < len(m.buf); i++ {
		if m.buf[i] == 0 {
			s := string(m.buf[m.pos:i])
			m.pos = i + 1
			return s
		}
	}
	m.truncated()
	return ""
}

// bytes reads n raw bytes (a parameter value).
func (m *msgReader) bytes(n int) []byte {
	if n < 0 || m.pos+n > len(m.buf) {
		m.truncated()
		return nil
	}
	b := m.buf[m.pos : m.pos+n]
	m.pos += n
	return b
}

// msgWriter accumulates one backend message and flushes it with its
// length prefix. Reused per connection; not safe for concurrent use.
type msgWriter struct {
	w   *bufio.Writer
	typ byte
	buf []byte
}

func (m *msgWriter) start(typ byte) *msgWriter {
	m.typ = typ
	m.buf = m.buf[:0]
	return m
}

func (m *msgWriter) byte(b byte)     { m.buf = append(m.buf, b) }
func (m *msgWriter) int16(v int)     { m.buf = binary.BigEndian.AppendUint16(m.buf, uint16(v)) }
func (m *msgWriter) int32(v int)     { m.buf = binary.BigEndian.AppendUint32(m.buf, uint32(v)) }
func (m *msgWriter) uint32(v uint32) { m.buf = binary.BigEndian.AppendUint32(m.buf, v) }
func (m *msgWriter) string(s string) { m.buf = append(append(m.buf, s...), 0) }
func (m *msgWriter) raw(b []byte)    { m.buf = append(m.buf, b...) }

// finish frames the accumulated payload onto the buffered writer. The
// caller flushes at ReadyForQuery / Flush boundaries.
func (m *msgWriter) finish() error {
	var hdr [5]byte
	hdr[0] = m.typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(m.buf)+4))
	if _, err := m.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := m.w.Write(m.buf)
	return err
}

// errFrameLength marks a declared frame length outside the acceptable
// range — a protocol violation the server reports before hanging up,
// unlike a plain read error.
var errFrameLength = fmt.Errorf("pgwire: invalid message length")

// readFrame reads one typed frame: type byte + int32 length (including
// itself) + payload. maxLen guards the allocation.
func readFrame(r *bufio.Reader, maxLen int) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(int32(binary.BigEndian.Uint32(hdr[1:])))
	if n < 4 || n-4 > maxLen {
		return 0, nil, fmt.Errorf("%w %d", errFrameLength, n)
	}
	payload := make([]byte, n-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// readStartup reads the untyped first frame (startup / SSLRequest /
// CancelRequest payload including the code int32).
func readStartup(r *bufio.Reader, maxLen int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(int32(binary.BigEndian.Uint32(hdr[:])))
	if n < 8 || n-4 > maxLen {
		return nil, fmt.Errorf("pgwire: invalid startup length %d", n)
	}
	payload := make([]byte, n-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// countParams scans SQL for placeholders the way the engine's lexer does
// (outside '...' strings, "..." identifiers and -- comments): the number
// of `?` occurrences plus the highest `$N`, whichever shape the statement
// uses. Used for ParameterDescription without a full parse.
func countParams(sql string) int {
	seq, max := 0, 0
	for i := 0; i < len(sql); i++ {
		switch c := sql[i]; c {
		case '\'':
			for i++; i < len(sql); i++ {
				if sql[i] == '\'' {
					if i+1 < len(sql) && sql[i+1] == '\'' {
						i++
						continue
					}
					break
				}
			}
		case '"':
			for i++; i < len(sql) && sql[i] != '"'; i++ {
			}
		case '-':
			if i+1 < len(sql) && sql[i+1] == '-' {
				for ; i < len(sql) && sql[i] != '\n'; i++ {
				}
			}
		case '?':
			seq++
		case '$':
			n := 0
			j := i + 1
			for ; j < len(sql) && sql[j] >= '0' && sql[j] <= '9'; j++ {
				if n < math.MaxInt32/10 {
					n = n*10 + int(sql[j]-'0')
				}
			}
			if j > i+1 && n > max {
				max = n
			}
			i = j - 1
		}
	}
	if max > seq {
		return max
	}
	return seq
}
