package pgwire

import (
	"testing"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/stats"
)

// TestLoadSmoke boots an in-process server and runs a short mixed-traffic
// load: the smoke gate for make ci. Zero protocol errors is the hard
// assertion — coded SQLSTATE errors (including admission rejections) are
// tolerated outcomes, transport/framing failures are not.
func TestLoadSmoke(t *testing.T) {
	eng := sqlexec.NewEngine()
	obs := stats.NewRegistry()
	obs.SetHistogramCapacity(1 << 14)
	srv, err := Serve(EngineBackend{Engine: eng}, Config{Addr: "127.0.0.1:0", Obs: obs})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	rep, err := RunLoad(LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    24,
		Duration: 1500 * time.Millisecond,
		SeedRows: 2000,
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	t.Logf("\n%s", rep)

	if rep.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", rep.ProtocolErrors)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d query errors", rep.Errors)
	}
	if rep.Queries == 0 {
		t.Fatal("no queries completed")
	}
	for _, op := range []string{OpPoint, OpAgg, OpInsert} {
		s := rep.PerOp[op]
		if s == nil || s.Count == 0 {
			t.Fatalf("op %s never ran", op)
		}
		if s.P50 <= 0 || s.P999 < s.P50 {
			t.Fatalf("op %s quantiles implausible: p50=%f p999=%f", op, s.P50, s.P999)
		}
	}

	// The latency quantiles must be visible through the stats pipeline too:
	// the report and a Prometheus scrape can never disagree.
	snap := rep.Obs.Snapshot()
	if got := snap.CounterTotal("loadgen_queries_total"); got != rep.Queries {
		t.Fatalf("stats pipeline says %d queries, report says %d", got, rep.Queries)
	}

	// Server-side metrics observed the same traffic.
	ssnap := obs.Snapshot()
	if ok, _ := ssnap.Counter("pgwire_queries_total", "result=ok"); ok == 0 {
		t.Fatal("server counted no successful queries")
	}
	if conns, _ := ssnap.Counter("pgwire_connections_total"); conns < 24 {
		t.Fatalf("server counted %d connections, want >= 24", conns)
	}
}
