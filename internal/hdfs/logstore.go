package hdfs

import (
	"errors"
	"fmt"

	"repro/internal/sharedlog"
)

// LogStore backs a shared-log unit with HDFS files — the third log
// persistence variant of §IV-C ("HDFS is used as a log persistence ...
// the data of this log can either be consumed by SAP HANA SOE API, the
// distributed log API or the HDFS file reader"). Every position becomes a
// small write-once file, readable by plain HDFS tooling.
type LogStore struct {
	fs     *FS
	prefix string
}

// NewLogStore creates a unit store rooted at prefix.
func NewLogStore(fs *FS, prefix string) *LogStore {
	return &LogStore{fs: fs, prefix: prefix}
}

func (s *LogStore) path(pos uint64) string {
	return fmt.Sprintf("%s/%020d.entry", s.prefix, pos)
}

// Put writes a position once.
func (s *LogStore) Put(pos uint64, data []byte) error {
	err := s.fs.WriteFile(s.path(pos), data)
	if errors.Is(err, ErrExists) {
		return sharedlog.ErrWritten
	}
	return err
}

// Get reads a position.
func (s *LogStore) Get(pos uint64) ([]byte, bool, error) {
	data, err := s.fs.ReadFile(s.path(pos))
	if errors.Is(err, ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Delete trims a position.
func (s *LogStore) Delete(pos uint64) error {
	err := s.fs.Delete(s.path(pos))
	if errors.Is(err, ErrNotFound) {
		return nil
	}
	return err
}

// NewHDFSLog assembles a shared log striped over HDFS-backed units.
func NewHDFSLog(fs *FS, stripes int, prefix string) *sharedlog.Log {
	cfg := sharedlog.Config{}
	for i := 0; i < stripes; i++ {
		unit := sharedlog.NewUnit(NewLogStore(fs, fmt.Sprintf("%s/stripe%d", prefix, i)))
		cfg.Stripes = append(cfg.Stripes, []*sharedlog.Unit{unit})
	}
	log, err := sharedlog.New(cfg)
	if err != nil {
		panic(err) // impossible: stripes > 0
	}
	return log
}
