package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(4, 64, 2)
	data := bytes.Repeat([]byte("hello hdfs "), 30) // ~330 bytes, ~6 blocks
	if err := fs.WriteFile("/data/x.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/data/x.txt")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
	if sz, _ := fs.Size("/data/x.txt"); sz != len(data) {
		t.Fatalf("size=%d", sz)
	}
	if err := fs.WriteFile("/data/x.txt", data); !errors.Is(err, ErrExists) {
		t.Fatal("double create accepted")
	}
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("phantom read")
	}
}

func TestEmptyFile(t *testing.T) {
	fs := New(2, 64, 1)
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read: %v %v", got, err)
	}
}

func TestListAndDelete(t *testing.T) {
	fs := New(2, 64, 1)
	fs.WriteFile("/logs/a", []byte("a"))
	fs.WriteFile("/logs/b", []byte("b"))
	fs.WriteFile("/other/c", []byte("c"))
	if got := fs.List("/logs/"); len(got) != 2 || got[0] != "/logs/a" {
		t.Fatalf("list=%v", got)
	}
	if err := fs.Delete("/logs/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/logs/a") {
		t.Fatal("deleted file exists")
	}
	if got := fs.List("/logs/"); len(got) != 1 {
		t.Fatalf("list=%v", got)
	}
}

func TestSplitsAlignWithBlocks(t *testing.T) {
	fs := New(3, 100, 2)
	data := make([]byte, 250)
	fs.WriteFile("/big", data)
	splits, err := fs.Splits("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("splits=%d", len(splits))
	}
	if splits[0].Length != 100 || splits[2].Length != 50 {
		t.Fatalf("lengths=%d,%d", splits[0].Length, splits[2].Length)
	}
	for _, s := range splits {
		if len(s.Hosts) != 2 {
			t.Fatalf("replicas=%d", len(s.Hosts))
		}
		chunk, err := fs.ReadSplit(s)
		if err != nil || len(chunk) != s.Length {
			t.Fatalf("split read: %d %v", len(chunk), err)
		}
	}
}

func TestReplicaFailover(t *testing.T) {
	fs := New(3, 64, 2)
	data := []byte("replicated data payload")
	fs.WriteFile("/f", data)
	splits, _ := fs.Splits("/f")
	// Kill one replica holder: reads survive.
	fs.KillDataNode(splits[0].Hosts[0])
	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("failover read: %v", err)
	}
	// Kill the second: block lost.
	fs.KillDataNode(splits[0].Hosts[1])
	if _, err := fs.ReadFile("/f"); !errors.Is(err, ErrBlockLost) {
		t.Fatalf("expected lost block, got %v", err)
	}
}

func TestReReplication(t *testing.T) {
	fs := New(4, 64, 2)
	fs.WriteFile("/f", []byte("precious"))
	splits, _ := fs.Splits("/f")
	fs.KillDataNode(splits[0].Hosts[0])
	created, err := fs.ReReplicate()
	if err != nil || created != 1 {
		t.Fatalf("created=%d err=%v", created, err)
	}
	// Now the other original replica can die too.
	fs.KillDataNode(splits[0].Hosts[1])
	if _, err := fs.ReadFile("/f"); err != nil {
		t.Fatalf("read after re-replication: %v", err)
	}
	if fs.LiveDataNodes() != 2 {
		t.Fatalf("live=%d", fs.LiveDataNodes())
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fs := New(5, 37, 2) // odd block size to exercise boundaries
	i := 0
	f := func(n uint16) bool {
		i++
		data := make([]byte, int(n)%5000)
		rng.Read(data)
		path := fmt.Sprintf("/p/%d", i)
		if err := fs.WriteFile(path, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(path)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHDFSBackedSharedLog(t *testing.T) {
	fs := New(3, 1024, 2)
	log := NewHDFSLog(fs, 2, "/soe/log")
	for i := 0; i < 10; i++ {
		if _, err := log.Append([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	d, err := log.Read(7)
	if err != nil || string(d) != "entry-7" {
		t.Fatalf("read: %q %v", d, err)
	}
	// The log entries are visible to the plain HDFS file reader (§IV-C).
	files := fs.List("/soe/log/")
	if len(files) != 10 {
		t.Fatalf("files=%d", len(files))
	}
	raw, err := fs.ReadFile(files[0])
	if err != nil || len(raw) == 0 {
		t.Fatal("log entry not readable as file")
	}
	// Trim removes the files.
	log.Trim(4)
	if got := len(fs.List("/soe/log/")); got != 6 {
		t.Fatalf("files after trim=%d", got)
	}
}
