// Package hdfs simulates the Hadoop Distributed File System the paper's
// ecosystem integrates with (§IV-C, Figure 4): a namenode tracking files,
// blocks and replica placement, datanodes storing block payloads, block
// reports, re-replication after datanode loss, and the block-location API
// MapReduce uses for locality-aware splits. It also backs the HDFS
// variants of the shared log and the cold storage tier.
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors surfaced by the filesystem.
var (
	ErrNotFound    = errors.New("hdfs: file not found")
	ErrExists      = errors.New("hdfs: file exists")
	ErrNoDataNodes = errors.New("hdfs: not enough live datanodes")
	ErrBlockLost   = errors.New("hdfs: block unavailable on all replicas")
)

// BlockID identifies one block.
type BlockID uint64

// DataNode stores block payloads.
type DataNode struct {
	ID    int
	mu    sync.RWMutex
	data  map[BlockID][]byte
	alive bool
}

func newDataNode(id int) *DataNode {
	return &DataNode{ID: id, data: map[BlockID][]byte{}, alive: true}
}

// Alive reports node health.
func (d *DataNode) Alive() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.alive
}

// BlockCount returns how many blocks the node stores.
func (d *DataNode) BlockCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data)
}

func (d *DataNode) put(b BlockID, data []byte) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.alive {
		return false
	}
	d.data[b] = data
	return true
}

func (d *DataNode) get(b BlockID) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.alive {
		return nil, false
	}
	v, ok := d.data[b]
	return v, ok
}

// fileMeta is the namenode's record of one file.
type fileMeta struct {
	blocks []BlockID
	size   int
}

// FS is the filesystem: namenode state plus its datanodes.
type FS struct {
	mu          sync.RWMutex
	blockSize   int
	replication int
	nodes       []*DataNode
	files       map[string]*fileMeta
	placement   map[BlockID][]int // block -> datanode IDs
	nextBlock   BlockID
	nextNode    int // round-robin placement cursor
}

// New creates a filesystem with the given datanode count, block size and
// replication factor.
func New(datanodes, blockSize, replication int) *FS {
	fs := &FS{
		blockSize:   blockSize,
		replication: replication,
		files:       map[string]*fileMeta{},
		placement:   map[BlockID][]int{},
	}
	for i := 0; i < datanodes; i++ {
		fs.nodes = append(fs.nodes, newDataNode(i))
	}
	return fs
}

// BlockSize returns the configured block size.
func (fs *FS) BlockSize() int { return fs.blockSize }

// WriteFile creates a file with the given content (no appends — HDFS
// semantics: write once).
func (fs *FS) WriteFile(path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	meta := &fileMeta{size: len(data)}
	for off := 0; off < len(data) || off == 0; off += fs.blockSize {
		end := off + fs.blockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := append([]byte(nil), data[off:end]...)
		id := fs.nextBlock
		fs.nextBlock++
		placed, err := fs.placeBlock(id, chunk)
		if err != nil {
			return err
		}
		fs.placement[id] = placed
		meta.blocks = append(meta.blocks, id)
		if end == len(data) {
			break
		}
	}
	fs.files[path] = meta
	return nil
}

// placeBlock stores a block on `replication` distinct live nodes. Caller
// holds fs.mu.
func (fs *FS) placeBlock(id BlockID, data []byte) ([]int, error) {
	var placed []int
	tried := 0
	for len(placed) < fs.replication && tried < 2*len(fs.nodes) {
		n := fs.nodes[fs.nextNode%len(fs.nodes)]
		fs.nextNode++
		tried++
		already := false
		for _, p := range placed {
			if p == n.ID {
				already = true
			}
		}
		if already || !n.put(id, data) {
			continue
		}
		placed = append(placed, n.ID)
	}
	if len(placed) == 0 {
		return nil, ErrNoDataNodes
	}
	return placed, nil
}

// ReadFile reassembles a file, falling back across replicas.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	meta, ok := fs.files[path]
	if !ok {
		fs.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	blocks := append([]BlockID(nil), meta.blocks...)
	fs.mu.RUnlock()

	var out []byte
	for _, b := range blocks {
		data, err := fs.readBlock(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, data...)
	}
	return out, nil
}

// readBlock fetches one block from any live replica.
func (fs *FS) readBlock(b BlockID) ([]byte, error) {
	fs.mu.RLock()
	placed := append([]int(nil), fs.placement[b]...)
	fs.mu.RUnlock()
	for _, nid := range placed {
		if data, ok := fs.nodes[nid].get(b); ok {
			return data, nil
		}
	}
	return nil, ErrBlockLost
}

// Delete removes a file and its blocks.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	for _, b := range meta.blocks {
		for _, nid := range fs.placement[b] {
			fs.nodes[nid].mu.Lock()
			delete(fs.nodes[nid].data, b)
			fs.nodes[nid].mu.Unlock()
		}
		delete(fs.placement, b)
	}
	delete(fs.files, path)
	return nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns a file's size.
func (fs *FS) Size(path string) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return meta.size, nil
}

// List returns paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Split is one MapReduce input split: a block with its hosting nodes.
type Split struct {
	Path   string
	Block  BlockID
	Index  int
	Hosts  []int
	Length int
}

// Splits returns the block-aligned input splits of a file.
func (fs *FS) Splits(path string) ([]Split, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	var out []Split
	for i, b := range meta.blocks {
		length := fs.blockSize
		if i == len(meta.blocks)-1 {
			length = meta.size - i*fs.blockSize
		}
		out = append(out, Split{Path: path, Block: b, Index: i, Hosts: append([]int(nil), fs.placement[b]...), Length: length})
	}
	return out, nil
}

// ReadSplit fetches one split's payload.
func (fs *FS) ReadSplit(s Split) ([]byte, error) { return fs.readBlock(s.Block) }

// KillDataNode fails a datanode; its blocks survive on replicas.
func (fs *FS) KillDataNode(id int) {
	fs.nodes[id].mu.Lock()
	fs.nodes[id].alive = false
	fs.nodes[id].mu.Unlock()
}

// ReviveDataNode brings a datanode back (its blocks are stale until the
// next re-replication pass rebuilds placement).
func (fs *FS) ReviveDataNode(id int) {
	fs.nodes[id].mu.Lock()
	fs.nodes[id].alive = true
	fs.nodes[id].mu.Unlock()
}

// LiveDataNodes counts healthy datanodes.
func (fs *FS) LiveDataNodes() int {
	n := 0
	for _, d := range fs.nodes {
		if d.Alive() {
			n++
		}
	}
	return n
}

// ReReplicate restores the replication factor of under-replicated blocks
// (the namenode's response to block reports after failures). Returns how
// many block copies it created.
func (fs *FS) ReReplicate() (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	created := 0
	for b, placed := range fs.placement {
		var live []int
		var data []byte
		for _, nid := range placed {
			if d, ok := fs.nodes[nid].get(b); ok {
				live = append(live, nid)
				data = d
			}
		}
		if len(live) == 0 {
			return created, fmt.Errorf("%w: block %d", ErrBlockLost, b)
		}
		for len(live) < fs.replication {
			target := -1
			for i := 0; i < len(fs.nodes); i++ {
				cand := fs.nodes[fs.nextNode%len(fs.nodes)]
				fs.nextNode++
				onIt := false
				for _, l := range live {
					if l == cand.ID {
						onIt = true
					}
				}
				if !onIt && cand.Alive() {
					target = cand.ID
					break
				}
			}
			if target < 0 {
				break // fewer live nodes than replication factor
			}
			fs.nodes[target].put(b, data)
			live = append(live, target)
			created++
		}
		fs.placement[b] = live
	}
	return created, nil
}
