package geo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlexec"
)

var (
	berlin   = Point{52.52, 13.405}
	potsdam  = Point{52.39, 13.066}
	walldorf = Point{49.30, 8.64}
	seoul    = Point{37.566, 126.978}
)

func TestHaversineDistance(t *testing.T) {
	d := berlin.DistanceKm(seoul)
	if d < 8000 || d > 8500 { // actual ≈ 8135 km
		t.Fatalf("Berlin-Seoul = %v km", d)
	}
	if berlin.DistanceKm(berlin) != 0 {
		t.Fatal("self distance")
	}
	d = berlin.DistanceKm(potsdam)
	if d < 25 || d > 35 { // actual ≈ 27 km
		t.Fatalf("Berlin-Potsdam = %v km", d)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b int16, c, d int16) bool {
		p := Point{float64(a % 90), float64(b % 180)}
		q := Point{float64(c % 90), float64(d % 180)}
		return math.Abs(p.DistanceKm(q)-q.DistanceKm(p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithinDistance(t *testing.T) {
	if !berlin.WithinDistance(potsdam, 30) {
		t.Fatal("Potsdam should be within 30km of Berlin")
	}
	if berlin.WithinDistance(walldorf, 30) {
		t.Fatal("Walldorf is not within 30km of Berlin")
	}
}

func TestPointParsing(t *testing.T) {
	for _, s := range []string{"52.52 13.405", "POINT(52.52 13.405)", "52.52,13.405"} {
		p, err := ParsePoint(s)
		if err != nil || p != berlin {
			t.Fatalf("ParsePoint(%q)=%v,%v", s, p, err)
		}
	}
	for _, s := range []string{"", "1", "a b", "POINT(x y)"} {
		if _, err := ParsePoint(s); err == nil {
			t.Fatalf("%q must not parse", s)
		}
	}
}

func squareAround(c Point, deg float64) Polygon {
	return Polygon{Ring: []Point{
		{c.Lat - deg, c.Lon - deg}, {c.Lat - deg, c.Lon + deg},
		{c.Lat + deg, c.Lon + deg}, {c.Lat + deg, c.Lon - deg},
	}}
}

func TestPolygonContains(t *testing.T) {
	sq := squareAround(berlin, 0.5)
	if !sq.Contains(berlin) {
		t.Fatal("center not contained")
	}
	if sq.Contains(walldorf) {
		t.Fatal("distant point contained")
	}
	// Boundary point.
	if !sq.Contains(Point{berlin.Lat - 0.5, berlin.Lon}) {
		t.Fatal("boundary point not contained")
	}
}

func TestPolygonParseAndRoundTrip(t *testing.T) {
	sq := squareAround(berlin, 1)
	parsed, err := ParsePolygon(sq.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Ring) != 4 || !parsed.Contains(berlin) {
		t.Fatal("round trip broken")
	}
	if _, err := ParsePolygon("POLYGON((1 2, 3 4))"); err == nil {
		t.Fatal("two-point polygon accepted")
	}
}

func TestPolygonArea(t *testing.T) {
	// 1°x1° square at the equator ≈ 111.195² km² ≈ 12364 km².
	eq := squareAround(Point{0, 0}, 0.5)
	a := eq.AreaKm2()
	if a < 12000 || a > 12700 {
		t.Fatalf("area=%v", a)
	}
	// Same square at 60°N has roughly half the area (cos 60 = 0.5).
	north := squareAround(Point{60, 0}, 0.5)
	ratio := north.AreaKm2() / a
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("latitude scaling ratio=%v", ratio)
	}
}

func TestRTreeMatchesLinearScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tree := NewRTree()
	var pts []Point
	for i := 0; i < 500; i++ {
		p := Point{Lat: 45 + rng.Float64()*10, Lon: 5 + rng.Float64()*10}
		pts = append(pts, p)
		tree.Insert(p, i)
	}
	if tree.Len() != 500 {
		t.Fatalf("len=%d", tree.Len())
	}
	f := func() bool {
		center := Point{Lat: 45 + rng.Float64()*10, Lon: 5 + rng.Float64()*10}
		km := rng.Float64() * 200
		got := tree.WithinDistance(center, km)
		want := map[int]bool{}
		for i, p := range pts {
			if center.DistanceKm(p) <= km {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, m := range got {
			if !want[m.ID] {
				return false
			}
		}
		// Sorted nearest-first.
		for i := 1; i < len(got); i++ {
			if got[i-1].DistKm > got[i].DistKm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeInRect(t *testing.T) {
	tree := NewRTree()
	tree.Insert(berlin, 1)
	tree.Insert(walldorf, 2)
	tree.Insert(seoul, 3)
	got := tree.InRect(Rect{MinLat: 45, MinLon: 5, MaxLat: 55, MaxLon: 15})
	if len(got) != 2 {
		t.Fatalf("got=%v", got)
	}
}

func TestSQLGeoFunctions(t *testing.T) {
	eng := sqlexec.NewEngine()
	Attach(eng)
	r := eng.MustQuery(`SELECT ST_DISTANCE_KM(52.52, 13.405, 52.39, 13.066)`)
	if d := r.Rows[0][0].F; d < 25 || d > 35 {
		t.Fatalf("distance=%v", d)
	}
	r = eng.MustQuery(`SELECT ST_WITHIN_DISTANCE(52.52, 13.405, 52.39, 13.066, 30)`)
	if !r.Rows[0][0].AsBool() {
		t.Fatal("within check")
	}
	r = eng.MustQuery(`SELECT ST_CONTAINS('POLYGON((52 13, 52 14, 53 14, 53 13))', 52.52, 13.405)`)
	if !r.Rows[0][0].AsBool() {
		t.Fatal("contains check")
	}
	r = eng.MustQuery(`SELECT ST_AREA_KM2('POLYGON((0 0, 0 1, 1 1, 1 0))')`)
	if a := r.Rows[0][0].F; a < 12000 || a > 12700 {
		t.Fatalf("area=%v", a)
	}
}

func TestSQLGeoNearbyJoinsRelational(t *testing.T) {
	eng := sqlexec.NewEngine()
	g := Attach(eng)
	eng.MustQuery(`CREATE TABLE dispensers (id VARCHAR, lat DOUBLE, lon DOUBLE, fill INT)`)
	locs := []struct {
		id       string
		lat, lon float64
		fill     int
	}{
		{"D1", 52.52, 13.40, 10},
		{"D2", 52.53, 13.41, 90},
		{"D3", 52.40, 13.07, 5}, // Potsdam, ~27km away
		{"D4", 49.30, 8.64, 50}, // Walldorf
	}
	for _, l := range locs {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO dispensers VALUES ('%s', %f, %f, %d)`, l.id, l.lat, l.lon, l.fill))
	}
	if err := g.CreateIndex("disp_geo", "dispensers", "lat", "lon", "id"); err != nil {
		t.Fatal(err)
	}
	// "All dispensers within 10 km of Berlin center that need a refill."
	r := eng.MustQuery(`SELECT d.id, n.dist_km FROM TABLE(GEO_NEARBY('disp_geo', 52.52, 13.405, 10)) n JOIN dispensers d ON d.id = n.k WHERE d.fill < 50 ORDER BY n.dist_km`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "D1" {
		t.Fatalf("rows=%v", r.Rows)
	}
	// Index follows DML.
	eng.MustQuery(`INSERT INTO dispensers VALUES ('D5', 52.521, 13.406, 1)`)
	r = eng.MustQuery(`SELECT COUNT(*) FROM TABLE(GEO_NEARBY('disp_geo', 52.52, 13.405, 10)) n`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
}

func TestGeoIndexErrors(t *testing.T) {
	eng := sqlexec.NewEngine()
	g := Attach(eng)
	if err := g.CreateIndex("x", "missing", "a", "b", "c"); err == nil {
		t.Fatal("missing table accepted")
	}
	eng.MustQuery(`CREATE TABLE p (id VARCHAR, lat DOUBLE, lon DOUBLE)`)
	if err := g.CreateIndex("x", "p", "lat", "nope", "id"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := g.Nearby("ghost", berlin, 1); err == nil {
		t.Fatal("missing index accepted")
	}
}
