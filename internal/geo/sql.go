package geo

import (
	"fmt"
	"sync"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Indexes maintains R-tree indexes over (lat, lon) table columns and
// registers the SQL surface of the geo engine:
//
//	ST_DISTANCE_KM(lat1, lon1, lat2, lon2)           scalar km
//	ST_WITHIN_DISTANCE(lat1, lon1, lat2, lon2, km)   scalar boolean
//	ST_CONTAINS('POLYGON((...))', lat, lon)          scalar boolean
//	ST_AREA_KM2('POLYGON((...))')                    scalar km²
//	TABLE(GEO_NEARBY('index', lat, lon, km))         indexed (k, dist_km)
type Indexes struct {
	mu   sync.Mutex
	eng  *sqlexec.Engine
	idxs map[string]*tableGeoIndex
}

type tableGeoIndex struct {
	table          string
	latCol, lonCol string
	keyCol         string
	cachedTS       uint64
	tree           *RTree
	keys           []string // id -> key value
}

// Attach installs the geo engine into a relational engine.
func Attach(eng *sqlexec.Engine) *Indexes {
	g := &Indexes{eng: eng, idxs: map[string]*tableGeoIndex{}}

	eng.Reg.RegisterScalar("ST_DISTANCE_KM", func(a []value.Value) (value.Value, error) {
		if len(a) != 4 {
			return value.Null, fmt.Errorf("geo: ST_DISTANCE_KM(lat1, lon1, lat2, lon2)")
		}
		p := Point{a[0].AsFloat(), a[1].AsFloat()}
		q := Point{a[2].AsFloat(), a[3].AsFloat()}
		return value.Float(p.DistanceKm(q)), nil
	})
	eng.Reg.RegisterScalar("ST_WITHIN_DISTANCE", func(a []value.Value) (value.Value, error) {
		if len(a) != 5 {
			return value.Null, fmt.Errorf("geo: ST_WITHIN_DISTANCE(lat1, lon1, lat2, lon2, km)")
		}
		p := Point{a[0].AsFloat(), a[1].AsFloat()}
		q := Point{a[2].AsFloat(), a[3].AsFloat()}
		return value.Bool(p.WithinDistance(q, a[4].AsFloat())), nil
	})
	eng.Reg.RegisterScalar("ST_CONTAINS", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("geo: ST_CONTAINS(polygon, lat, lon)")
		}
		pg, err := ParsePolygon(a[0].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Bool(pg.Contains(Point{a[1].AsFloat(), a[2].AsFloat()})), nil
	})
	eng.Reg.RegisterScalar("ST_AREA_KM2", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, fmt.Errorf("geo: ST_AREA_KM2(polygon)")
		}
		pg, err := ParsePolygon(a[0].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Float(pg.AreaKm2()), nil
	})
	eng.Reg.RegisterTable("GEO_NEARBY", columnstore.Schema{
		{Name: "k", Kind: value.KindString},
		{Name: "dist_km", Kind: value.KindFloat},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 4 {
			return nil, fmt.Errorf("geo: GEO_NEARBY(index, lat, lon, km)")
		}
		return g.Nearby(a[0].AsString(), Point{a[1].AsFloat(), a[2].AsFloat()}, a[3].AsFloat())
	})
	return g
}

// CreateIndex declares an R-tree over table(latCol, lonCol); keyCol keys
// the results. The tree rebuilds lazily when the table changes.
func (g *Indexes) CreateIndex(name, table, latCol, lonCol, keyCol string) error {
	entry, ok := g.eng.Cat.Table(table)
	if !ok {
		return fmt.Errorf("geo: unknown table %q", table)
	}
	for _, c := range []string{latCol, lonCol, keyCol} {
		if entry.Schema.ColIndex(c) < 0 {
			return fmt.Errorf("geo: column %q not in %s", c, table)
		}
	}
	g.mu.Lock()
	g.idxs[name] = &tableGeoIndex{table: table, latCol: latCol, lonCol: lonCol, keyCol: keyCol}
	g.mu.Unlock()
	return nil
}

// Nearby runs an indexed proximity query, returning (key, dist_km) rows
// nearest first.
func (g *Indexes) Nearby(name string, center Point, km float64) ([]value.Row, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ix, ok := g.idxs[name]
	if !ok {
		return nil, fmt.Errorf("geo: no geo index %q", name)
	}
	if err := g.refresh(ix); err != nil {
		return nil, err
	}
	var out []value.Row
	for _, m := range ix.tree.WithinDistance(center, km) {
		out = append(out, value.Row{value.String(ix.keys[m.ID]), value.Float(m.DistKm)})
	}
	return out, nil
}

func (g *Indexes) refresh(ix *tableGeoIndex) error {
	ts := g.eng.Mgr.Now()
	if ix.tree != nil && ix.cachedTS == ts {
		return nil
	}
	entry, ok := g.eng.Cat.Table(ix.table)
	if !ok {
		return fmt.Errorf("geo: table %q dropped", ix.table)
	}
	lat := entry.Schema.ColIndex(ix.latCol)
	lon := entry.Schema.ColIndex(ix.lonCol)
	key := entry.Schema.ColIndex(ix.keyCol)
	tree := NewRTree()
	var keys []string
	for _, p := range entry.Partitions {
		snap := p.Table.Snapshot(ts)
		for pos := 0; pos < snap.NumRows(); pos++ {
			if !snap.Visible(pos) {
				continue
			}
			id := len(keys)
			keys = append(keys, snap.Get(key, pos).AsString())
			tree.Insert(Point{snap.Get(lat, pos).AsFloat(), snap.Get(lon, pos).AsFloat()}, id)
		}
	}
	ix.tree, ix.keys, ix.cachedTS = tree, keys, ts
	return nil
}
