// Package geo implements the geospatial engine of §II-F: points and
// polygons as native data types, the WithinDistance / Contains / Area
// query operators the paper names, an R-tree index for proximity search,
// and SQL integration for geo-location analytics ("get all customers
// within a distance of 10 kilometers having payments due").
package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a WGS84 coordinate.
type Point struct {
	Lat, Lon float64
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0088

// DistanceKm returns the great-circle (haversine) distance in kilometers.
func (p Point) DistanceKm(q Point) float64 {
	lat1, lon1 := p.Lat*math.Pi/180, p.Lon*math.Pi/180
	lat2, lon2 := q.Lat*math.Pi/180, q.Lon*math.Pi/180
	dLat, dLon := lat2-lat1, lon2-lon1
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// WithinDistance reports whether q lies within km kilometers of p — the
// WithinDistance operator of §II-F.
func (p Point) WithinDistance(q Point, km float64) bool {
	return p.DistanceKm(q) <= km
}

// String renders "lat lon".
func (p Point) String() string {
	return strconv.FormatFloat(p.Lat, 'g', -1, 64) + " " + strconv.FormatFloat(p.Lon, 'g', -1, 64)
}

// ParsePoint parses "POINT(lat lon)" or "lat lon".
func ParsePoint(s string) (Point, error) {
	s = strings.TrimSpace(s)
	if up := strings.ToUpper(s); strings.HasPrefix(up, "POINT(") && strings.HasSuffix(s, ")") {
		s = s[6 : len(s)-1]
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' })
	if len(fields) != 2 {
		return Point{}, fmt.Errorf("geo: bad point %q", s)
	}
	lat, err1 := strconv.ParseFloat(fields[0], 64)
	lon, err2 := strconv.ParseFloat(fields[1], 64)
	if err1 != nil || err2 != nil {
		return Point{}, fmt.Errorf("geo: bad point %q", s)
	}
	return Point{Lat: lat, Lon: lon}, nil
}

// Polygon is a simple (non-self-intersecting) polygon; the ring is
// implicitly closed.
type Polygon struct {
	Ring []Point
}

// ParsePolygon parses "POLYGON((lat lon, lat lon, ...))".
func ParsePolygon(s string) (Polygon, error) {
	s = strings.TrimSpace(s)
	up := strings.ToUpper(s)
	if strings.HasPrefix(up, "POLYGON((") && strings.HasSuffix(s, "))") {
		s = s[9 : len(s)-2]
	}
	var ring []Point
	for _, part := range strings.Split(s, ",") {
		p, err := ParsePoint(part)
		if err != nil {
			return Polygon{}, err
		}
		ring = append(ring, p)
	}
	if len(ring) < 3 {
		return Polygon{}, fmt.Errorf("geo: polygon needs at least 3 points")
	}
	return Polygon{Ring: ring}, nil
}

// String renders the polygon in the parseable form.
func (pg Polygon) String() string {
	parts := make([]string, len(pg.Ring))
	for i, p := range pg.Ring {
		parts[i] = p.String()
	}
	return "POLYGON((" + strings.Join(parts, ", ") + "))"
}

// Contains reports whether the point lies inside the polygon (ray
// casting over lat/lon treated as planar — fine for the city-scale areas
// of the paper's scenarios). Boundary points count as inside.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Ring)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Ring[i], pg.Ring[j]
		// On-edge check.
		if onSegment(a, b, p) {
			return true
		}
		if (a.Lon > p.Lon) != (b.Lon > p.Lon) {
			t := (p.Lon - a.Lon) / (b.Lon - a.Lon)
			xCross := a.Lat + t*(b.Lat-a.Lat)
			if p.Lat < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

func onSegment(a, b, p Point) bool {
	cross := (b.Lat-a.Lat)*(p.Lon-a.Lon) - (b.Lon-a.Lon)*(p.Lat-a.Lat)
	if math.Abs(cross) > 1e-12 {
		return false
	}
	return math.Min(a.Lat, b.Lat)-1e-12 <= p.Lat && p.Lat <= math.Max(a.Lat, b.Lat)+1e-12 &&
		math.Min(a.Lon, b.Lon)-1e-12 <= p.Lon && p.Lon <= math.Max(a.Lon, b.Lon)+1e-12
}

// AreaKm2 returns the polygon area in square kilometers (planar shoelace
// scaled by the local metric — adequate for areas far smaller than a
// hemisphere).
func (pg Polygon) AreaKm2() float64 {
	n := len(pg.Ring)
	if n < 3 {
		return 0
	}
	// Local scale: one degree of latitude ≈ 111.195 km; longitude scales
	// by cos(mean latitude).
	meanLat := 0.0
	for _, p := range pg.Ring {
		meanLat += p.Lat
	}
	meanLat /= float64(n)
	kmPerDegLat := math.Pi * earthRadiusKm / 180
	kmPerDegLon := kmPerDegLat * math.Cos(meanLat*math.Pi/180)

	area := 0.0
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		xi, yi := pg.Ring[i].Lon*kmPerDegLon, pg.Ring[i].Lat*kmPerDegLat
		xj, yj := pg.Ring[j].Lon*kmPerDegLon, pg.Ring[j].Lat*kmPerDegLat
		area += xi*yj - xj*yi
	}
	return math.Abs(area) / 2
}

// BoundingBox returns the lat/lon envelope of the polygon.
func (pg Polygon) BoundingBox() Rect {
	r := Rect{MinLat: math.MaxFloat64, MinLon: math.MaxFloat64, MaxLat: -math.MaxFloat64, MaxLon: -math.MaxFloat64}
	for _, p := range pg.Ring {
		r = r.expand(p)
	}
	return r
}
