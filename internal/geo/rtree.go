package geo

import (
	"math"
	"sort"
)

// Rect is a lat/lon aligned bounding rectangle.
type Rect struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

func (r Rect) expand(p Point) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, p.Lat), MinLon: math.Min(r.MinLon, p.Lon),
		MaxLat: math.Max(r.MaxLat, p.Lat), MaxLon: math.Max(r.MaxLon, p.Lon),
	}
}

func (r Rect) union(o Rect) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, o.MinLat), MinLon: math.Min(r.MinLon, o.MinLon),
		MaxLat: math.Max(r.MaxLat, o.MaxLat), MaxLon: math.Max(r.MaxLon, o.MaxLon),
	}
}

func (r Rect) intersects(o Rect) bool {
	return r.MinLat <= o.MaxLat && o.MinLat <= r.MaxLat &&
		r.MinLon <= o.MaxLon && o.MinLon <= r.MaxLon
}

func (r Rect) area() float64 {
	return (r.MaxLat - r.MinLat) * (r.MaxLon - r.MinLon)
}

func pointRect(p Point) Rect {
	return Rect{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon}
}

// RTree is a quadratic-split R-tree over points, the proximity index
// behind WithinDistance queries.
type RTree struct {
	root *rnode
	size int
}

const rtreeMax = 8

type rnode struct {
	rect    Rect
	leaf    bool
	entries []rentry
}

type rentry struct {
	rect  Rect
	child *rnode // internal
	point Point  // leaf
	id    int    // leaf payload
}

// NewRTree returns an empty index.
func NewRTree() *RTree {
	return &RTree{root: &rnode{leaf: true}}
}

// Len returns the number of indexed points.
func (t *RTree) Len() int { return t.size }

// Insert adds a point with an opaque id.
func (t *RTree) Insert(p Point, id int) {
	t.size++
	leaf := t.chooseLeaf(t.root, pointRect(p))
	leaf.entries = append(leaf.entries, rentry{rect: pointRect(p), point: p, id: id})
	t.adjust(leaf)
}

func (t *RTree) chooseLeaf(n *rnode, r Rect) *rnode {
	for !n.leaf {
		best := 0
		bestGrowth := math.MaxFloat64
		for i, e := range n.entries {
			growth := e.rect.union(r).area() - e.rect.area()
			if growth < bestGrowth || (growth == bestGrowth && e.rect.area() < n.entries[best].rect.area()) {
				best, bestGrowth = i, growth
			}
		}
		n.entries[best].rect = n.entries[best].rect.union(r)
		n = n.entries[best].child
	}
	return n
}

// adjust splits overflowing nodes bottom-up. Parent links are found by
// re-descending (trees here are shallow; simplicity wins).
func (t *RTree) adjust(n *rnode) {
	if len(n.entries) <= rtreeMax {
		t.recomputeRects(t.root)
		return
	}
	t.splitNode(n)
	t.recomputeRects(t.root)
}

func (t *RTree) splitNode(n *rnode) {
	// Quadratic split: pick the two seeds wasting the most area together.
	bi, bj, worst := 0, 1, -1.0
	for i := 0; i < len(n.entries); i++ {
		for j := i + 1; j < len(n.entries); j++ {
			waste := n.entries[i].rect.union(n.entries[j].rect).area() -
				n.entries[i].rect.area() - n.entries[j].rect.area()
			if waste > worst {
				bi, bj, worst = i, j, waste
			}
		}
	}
	g1 := &rnode{leaf: n.leaf, entries: []rentry{n.entries[bi]}}
	g2 := &rnode{leaf: n.leaf, entries: []rentry{n.entries[bj]}}
	g1.rect, g2.rect = n.entries[bi].rect, n.entries[bj].rect
	for k, e := range n.entries {
		if k == bi || k == bj {
			continue
		}
		if g1.rect.union(e.rect).area()-g1.rect.area() <= g2.rect.union(e.rect).area()-g2.rect.area() {
			g1.entries = append(g1.entries, e)
			g1.rect = g1.rect.union(e.rect)
		} else {
			g2.entries = append(g2.entries, e)
			g2.rect = g2.rect.union(e.rect)
		}
	}
	if n == t.root {
		t.root = &rnode{leaf: false, entries: []rentry{
			{rect: g1.rect, child: g1},
			{rect: g2.rect, child: g2},
		}}
		return
	}
	// Replace n in its parent with g1 and add g2, splitting upward as
	// needed.
	parent := t.findParent(t.root, n)
	for i := range parent.entries {
		if parent.entries[i].child == n {
			parent.entries[i] = rentry{rect: g1.rect, child: g1}
			break
		}
	}
	parent.entries = append(parent.entries, rentry{rect: g2.rect, child: g2})
	if len(parent.entries) > rtreeMax {
		t.splitNode(parent)
	}
}

func (t *RTree) findParent(cur, target *rnode) *rnode {
	if cur.leaf {
		return nil
	}
	for _, e := range cur.entries {
		if e.child == target {
			return cur
		}
		if p := t.findParent(e.child, target); p != nil {
			return p
		}
	}
	return nil
}

func (t *RTree) recomputeRects(n *rnode) Rect {
	if len(n.entries) == 0 {
		n.rect = Rect{}
		return n.rect
	}
	if n.leaf {
		r := n.entries[0].rect
		for _, e := range n.entries[1:] {
			r = r.union(e.rect)
		}
		n.rect = r
		return r
	}
	r := t.recomputeRects(n.entries[0].child)
	n.entries[0].rect = r
	for i := 1; i < len(n.entries); i++ {
		cr := t.recomputeRects(n.entries[i].child)
		n.entries[i].rect = cr
		r = r.union(cr)
	}
	n.rect = r
	return r
}

// Match is one proximity result.
type Match struct {
	ID     int
	Point  Point
	DistKm float64
}

// WithinDistance returns all points within km kilometers of center,
// nearest first.
func (t *RTree) WithinDistance(center Point, km float64) []Match {
	// Conservative lat/lon envelope of the search circle.
	dLat := km / 111.195
	cosLat := math.Cos(center.Lat * math.Pi / 180)
	dLon := 180.0
	if cosLat > 1e-9 {
		dLon = km / (111.195 * cosLat)
	}
	query := Rect{
		MinLat: center.Lat - dLat, MaxLat: center.Lat + dLat,
		MinLon: center.Lon - dLon, MaxLon: center.Lon + dLon,
	}
	var out []Match
	t.search(t.root, query, func(e rentry) {
		if d := center.DistanceKm(e.point); d <= km {
			out = append(out, Match{ID: e.id, Point: e.point, DistKm: d})
		}
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a].DistKm != out[b].DistKm {
			return out[a].DistKm < out[b].DistKm
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// InRect returns all points inside the rectangle.
func (t *RTree) InRect(r Rect) []Match {
	var out []Match
	t.search(t.root, r, func(e rentry) {
		out = append(out, Match{ID: e.id, Point: e.point})
	})
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

func (t *RTree) search(n *rnode, q Rect, visit func(rentry)) {
	if len(n.entries) == 0 || !n.rect.intersects(q) {
		return
	}
	for _, e := range n.entries {
		if !e.rect.intersects(q) {
			continue
		}
		if n.leaf {
			visit(e)
		} else {
			t.search(e.child, q, visit)
		}
	}
}
