package soe

import (
	"sort"
	"sync"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// StatsService is the v2stats service of Figure 3 — previously a line
// folded into the cluster manager, now its own registered service. Every
// data node keeps a private metrics registry (labeled node=...); the
// StatsService pulls those registries over the network with MsgStatsPull
// and merges them with the cluster-level registry (coordinator, broker,
// shared log, netsim link counters) and the process-wide default registry
// (column store, streaming) into one landscape-wide snapshot. Remote
// clients — the shell, the /metrics endpoint, the cluster manager's
// hotspot detector — read the aggregate either in-process via Collect or
// over the wire via MsgStatsPull to the service itself.
type StatsService struct {
	Name string
	net  *netsim.Network
	disc *Discovery

	cluster *stats.Registry // coordinator/broker/log/netsim metrics
	tracer  *stats.Tracer

	mu      sync.Mutex
	sources map[string]bool // network endpoints answering MsgStatsPull
}

// NewStatsService creates, registers and announces the v2stats service.
func NewStatsService(name string, net *netsim.Network, disc *Discovery, cluster *stats.Registry, tracer *stats.Tracer) *StatsService {
	s := &StatsService{Name: name, net: net, disc: disc, cluster: cluster, tracer: tracer, sources: map[string]bool{}}
	net.Register(name, s.handle)
	disc.Announce("v2stats", name)
	return s
}

// AddSource subscribes a network endpoint (a data node) whose registry
// the service aggregates.
func (s *StatsService) AddSource(endpoint string) {
	s.mu.Lock()
	s.sources[endpoint] = true
	s.mu.Unlock()
}

// RemoveSource drops an endpoint (decommissioned node).
func (s *StatsService) RemoveSource(endpoint string) {
	s.mu.Lock()
	delete(s.sources, endpoint)
	s.mu.Unlock()
}

// Sources lists subscribed endpoints, sorted.
func (s *StatsService) Sources() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sources))
	for e := range s.sources {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Tracer returns the landscape tracer (coordinator/broker spans).
func (s *StatsService) Tracer() *stats.Tracer { return s.tracer }

// Registry returns the cluster-level registry.
func (s *StatsService) Registry() *stats.Registry { return s.cluster }

// Collect aggregates the landscape: the cluster registry, the process
// default registry, and every source's per-node registry pulled over
// netsim. Crashed sources are simply absent (availability over
// completeness, like the manager's Status poll).
func (s *StatsService) Collect() stats.Snapshot {
	snaps := make([]stats.Snapshot, 0, 2+len(s.sources))
	snaps = append(snaps, s.cluster.Snapshot(), stats.Default.Snapshot())
	for _, src := range s.Sources() {
		resp, err := call[StatsResp](s.net, s.Name, src, MsgStatsPull, StatsReq{Token: s.disc.Token()})
		if err != nil || resp.Err != "" {
			continue
		}
		snaps = append(snaps, resp.Snapshot)
	}
	return stats.Merge(snaps...)
}

func (s *StatsService) handle(from string, req netsim.Message) (netsim.Message, error) {
	if req.Kind != MsgStatsPull {
		return netsim.Message{}, errUnknownMsg("v2stats", req.Kind)
	}
	r, err := decode[StatsReq](req)
	if err != nil {
		return netsim.Message{}, err
	}
	if !s.disc.Validate(r.Token) {
		return netsim.Message{Kind: MsgStatsPull, Payload: encode(StatsResp{Err: "unauthorized"})}, nil
	}
	return netsim.Message{Kind: MsgStatsPull, Payload: encode(StatsResp{Snapshot: s.Collect()})}, nil
}
