package soe

import (
	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

// RegisterClusterView publishes sys.m_cluster on an engine's virtual-view
// catalog: one row per (node, metric) pair, melted from the v2stats
// landscape aggregate — every per-node registry is pulled over the wire
// by StatsService.Collect at scan time, so a SQL client sees the same
// numbers a /metrics scrape would, keyed by node. Node liveness and
// catch-up state (applied_ts, partitions, queries) come from the cluster
// manager's status probes and appear as synthetic gauges per node.
func RegisterClusterView(sys *sqlexec.SysCatalog, c *Cluster) {
	schema := columnstore.Schema{
		{Name: "node", Kind: value.KindString},
		{Name: "metric", Kind: value.KindString},
		{Name: "kind", Kind: value.KindString},
		{Name: "value", Kind: value.KindFloat},
	}
	sys.Register("sys.m_cluster", schema, func() ([]value.Row, error) {
		var rows []value.Row
		add := func(node, metric, kind string, v float64) {
			rows = append(rows, value.Row{
				value.String(node), value.String(metric),
				value.String(kind), value.Float(v),
			})
		}
		snap := c.CollectStats()
		for _, cs := range snap.Counters {
			add(seriesNode(cs.Labels), cs.Name, "counter", float64(cs.Value))
		}
		for _, g := range snap.Gauges {
			add(seriesNode(g.Labels), g.Name, "gauge", g.Value)
		}
		for _, h := range snap.Histograms {
			add(seriesNode(h.Labels), h.Name+"_count", "histogram", float64(h.Count))
			add(seriesNode(h.Labels), h.Name+"_p99", "histogram", h.P99)
		}
		for _, st := range c.Manager.Status() {
			add(st.Node, "soe_status_applied_ts", "gauge", float64(st.AppliedTS))
			add(st.Node, "soe_status_partitions", "gauge", float64(st.Partitions))
			add(st.Node, "soe_status_queries_run", "gauge", float64(st.QueriesRun))
			add(st.Node, "soe_status_rows_scanned", "gauge", float64(st.RowsScanned))
		}
		return rows, nil
	})
}

// seriesNode attributes a series to its node; cluster-level series
// (coordinator, broker, shared log, network) report as "_cluster".
func seriesNode(labels []string) string {
	if n, ok := stats.LabelValue(labels, "node"); ok {
		return n
	}
	return "_cluster"
}
