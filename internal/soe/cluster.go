package soe

import (
	"fmt"
	"time"

	"repro/internal/columnstore"
	"repro/internal/netsim"
	"repro/internal/sharedlog"
	"repro/internal/stats"
	"repro/internal/value"
)

// Cluster bundles a complete SOE landscape — every service of Figure 3 —
// for embedding, examples and benchmarks.
type Cluster struct {
	Net         *netsim.Network
	Disc        *Discovery
	Catalog     *ClusterCatalog
	Log         *sharedlog.Log
	Broker      *Broker
	Coordinator *Coordinator
	Manager     *Manager
	Stats       *StatsService
	Nodes       []*DataNode

	// Obs is the cluster-level registry (coordinator, broker, shared log,
	// network); per-node metrics live in each node's own registry and are
	// merged on demand by Stats.Collect.
	Obs    *stats.Registry
	Tracer *stats.Tracer
}

// ClusterConfig shapes a cluster.
type ClusterConfig struct {
	Nodes        int
	Mode         Mode          // node mode (OLTP or OLAP)
	Net          netsim.Config // link model
	LogStripes   int
	LogReplicas  int
	PollInterval time.Duration // OLAP polling; 0 = manual PollOnce
	Secret       string
}

// NewCluster boots a full landscape: shared log, broker, n data nodes,
// coordinator, manager, discovery.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.LogStripes <= 0 {
		cfg.LogStripes = 4
	}
	if cfg.LogReplicas <= 0 {
		cfg.LogReplicas = 1
	}
	if cfg.Secret == "" {
		cfg.Secret = "velocity"
	}
	net := netsim.New(cfg.Net)
	disc := NewDiscovery(cfg.Secret)
	ccat := NewClusterCatalog()
	log := sharedlog.NewInMemory(cfg.LogStripes, cfg.LogReplicas)
	broker := NewBroker("v2transact", net, disc, log)
	mgr := NewManager("v2clustermgr", net, disc, ccat, broker, log)

	obs := stats.NewRegistry()
	tracer := stats.NewTracer(256)
	net.Instrument(obs)
	log.Instrument(obs)
	broker.Instrument(obs, tracer)
	statsSvc := NewStatsService("v2stats", net, disc, obs, tracer)
	mgr.SetStatsService(statsSvc)

	c := &Cluster{Net: net, Disc: disc, Catalog: ccat, Log: log, Broker: broker, Manager: mgr, Stats: statsSvc, Obs: obs, Tracer: tracer}
	for i := 0; i < cfg.Nodes; i++ {
		n := mgr.StartNode(fmt.Sprintf("node%d", i), cfg.Mode)
		n.SetTracer(tracer)
		if cfg.Mode == OLAP && cfg.PollInterval > 0 {
			n.StartPolling(cfg.PollInterval)
		}
		c.Nodes = append(c.Nodes, n)
	}
	c.Coordinator = NewCoordinator("v2dqp", net, disc, ccat, broker.Name)
	c.Coordinator.Instrument(obs, tracer)
	return c
}

// CollectStats returns the merged landscape metrics snapshot (cluster
// registry + process default + every node's registry).
func (c *Cluster) CollectStats() stats.Snapshot {
	return c.Stats.Collect()
}

// Shutdown stops polling loops and releases node-local extended stores.
func (c *Cluster) Shutdown() {
	for _, n := range c.Nodes {
		n.StopPolling()
		n.closeWarm()
	}
}

// CreateTable defines a hash-partitioned table across the cluster's nodes
// (round-robin placement) and installs the partitions.
func (c *Cluster) CreateTable(name string, schema columnstore.Schema, partKey string, partitions int) (*DistTable, error) {
	if partitions <= 0 {
		partitions = len(c.Nodes)
	}
	t := &DistTable{Name: name, Schema: schema.Clone(), PartKey: partKey, Partitions: partitions}
	for p := 0; p < partitions; p++ {
		t.NodeOf = append(t.NodeOf, c.Nodes[p%len(c.Nodes)].Name)
	}
	if err := c.Catalog.Define(t); err != nil {
		return nil, err
	}
	for _, n := range c.Nodes {
		if err := n.Host(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReplicateTable installs one read replica of every partition of a table
// on a node other than its primary host (round-robin placement), seeds it
// with a snapshot from the primary, and registers the placement in the
// cluster catalog so the coordinator can route failed-over reads to it.
func (c *Cluster) ReplicateTable(table string) error {
	t, ok := c.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	if len(c.Nodes) < 2 {
		return fmt.Errorf("soe: replication needs at least two nodes")
	}
	for p := 0; p < t.Partitions; p++ {
		primary := t.NodeOf[p]
		var replica *DataNode
		for off := 1; off <= len(c.Nodes); off++ {
			if cand := c.Nodes[(p+off)%len(c.Nodes)]; cand.Name != primary {
				replica = cand
				break
			}
		}
		if replica == nil {
			continue
		}
		if err := replica.HostReplica(t, p); err != nil {
			return err
		}
		if err := replica.CatchUpSnapshot(primary, table, p); err != nil {
			return err
		}
		if err := c.Catalog.AddReplica(table, p, replica.Name); err != nil {
			return err
		}
	}
	return nil
}

// BulkLoadLocal loads rows directly into the hosting nodes' storage,
// bypassing the broker and shared log. Benchmark/test setup only: it is
// NOT transactional and NOT replicated — use Insert for real writes.
func (c *Cluster) BulkLoadLocal(table string, rows []value.Row) error {
	t, ok := c.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	ki := t.KeyIndex()
	byPart := map[int][]value.Row{}
	for _, r := range rows {
		p := t.PartitionFor(r[ki])
		byPart[p] = append(byPart[p], r)
	}
	ts := c.Broker.clock.Add(1)
	byName := map[string]*DataNode{}
	for _, n := range c.Nodes {
		byName[n.Name] = n
	}
	for p, prt := range byPart {
		node := byName[t.NodeOf[p]]
		if node == nil {
			return fmt.Errorf("soe: partition %d host %q not in cluster", p, t.NodeOf[p])
		}
		var writes []LogWrite
		for _, r := range prt {
			writes = append(writes, LogWrite{Table: table, Partition: p, Kind: 0, Row: r})
		}
		node.applyEntries([]LogEntry{{TS: ts, Writes: writes}})
	}
	t.addRows(int64(len(rows)))
	return nil
}

// Insert routes rows through the coordinator and broker.
func (c *Cluster) Insert(table string, rows ...value.Row) (uint64, error) {
	return c.Coordinator.Insert(table, rows)
}

// Query runs a distributed SELECT.
func (c *Cluster) Query(sql string) (*Result, error) {
	r, _, err := c.Coordinator.Query(sql)
	return r, err
}

// SyncOLAP forces every OLAP node to drain the log (deterministic tests
// and benchmarks).
func (c *Cluster) SyncOLAP() error {
	for _, n := range c.Nodes {
		if n.Mode != OLAP {
			continue
		}
		for {
			applied, err := n.PollOnce(8192)
			if err != nil {
				return err
			}
			if applied == 0 {
				break
			}
		}
	}
	return nil
}

// CreateRangeTable defines a range-partitioned table: partition i covers
// [bounds[i-1], bounds[i]) on an integer key, with open ends (§IV-B:
// "multi-level horizontal partitioning (range and hash)").
func (c *Cluster) CreateRangeTable(name string, schema columnstore.Schema, partKey string, bounds []int64) (*DistTable, error) {
	t := &DistTable{
		Name: name, Schema: schema.Clone(), PartKey: partKey,
		Partitions: len(bounds) + 1, RangeBounds: append([]int64(nil), bounds...),
	}
	for p := 0; p < t.Partitions; p++ {
		t.NodeOf = append(t.NodeOf, c.Nodes[p%len(c.Nodes)].Name)
	}
	if err := c.Catalog.Define(t); err != nil {
		return nil, err
	}
	for _, n := range c.Nodes {
		if err := n.Host(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}
