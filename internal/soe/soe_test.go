package soe

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/columnstore"
	"repro/internal/distql"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

func ordersSchema() columnstore.Schema {
	return columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "region", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}
}

func itemsSchema() columnstore.Schema {
	return columnstore.Schema{
		{Name: "id", Kind: value.KindString},
		{Name: "order_id", Kind: value.KindString},
		{Name: "qty", Kind: value.KindInt},
	}
}

func newTestCluster(t *testing.T, nodes int, mode Mode) *Cluster {
	t.Helper()
	c := NewCluster(ClusterConfig{Nodes: nodes, Mode: mode, LogStripes: 2, LogReplicas: 2})
	t.Cleanup(c.Shutdown)
	return c
}

func loadOrders(t *testing.T, c *Cluster, n int) {
	t.Helper()
	if _, err := c.CreateTable("orders", ordersSchema(), "id", 2*len(c.Nodes)); err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < n; i++ {
		rows = append(rows, value.Row{
			value.String(fmt.Sprintf("O%04d", i)),
			value.String([]string{"EMEA", "AMER", "APJ"}[i%3]),
			value.Float(float64(i)),
		})
	}
	if _, err := c.Insert("orders", rows...); err != nil {
		t.Fatal(err)
	}
}

func TestOLTPClusterInsertAndQuery(t *testing.T) {
	c := newTestCluster(t, 4, OLTP)
	loadOrders(t, c, 90)
	// OLTP nodes applied synchronously: immediately visible.
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsInt() != 90 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
}

func TestDistributedAggregation(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	loadOrders(t, c, 90)
	r, _, err := c.Coordinator.Query(`SELECT region, COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM orders GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("groups=%d", len(r.Rows))
	}
	// AMER holds i%3==1: count 30, sum = sum(1,4,...,88), min 1, max 88.
	amer := r.Rows[0]
	if amer[0].S != "AMER" || amer[1].AsInt() != 30 {
		t.Fatalf("amer=%v", amer)
	}
	var sum float64
	for i := 1; i < 90; i += 3 {
		sum += float64(i)
	}
	if amer[2].AsFloat() != sum {
		t.Fatalf("sum=%v want %v", amer[2], sum)
	}
	if amer[3].AsFloat() != sum/30 {
		t.Fatalf("avg=%v", amer[3])
	}
	if amer[4].AsFloat() != 1 || amer[5].AsFloat() != 88 {
		t.Fatalf("min/max=%v/%v", amer[4], amer[5])
	}
}

func TestDistributedFilterAndLimit(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	loadOrders(t, c, 90)
	r, err := c.Query(`SELECT id FROM orders WHERE amount >= 85 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 || r.Rows[0][0].S != "O0085" {
		t.Fatalf("rows=%v", r.Rows)
	}
	r, err = c.Query(`SELECT id FROM orders ORDER BY id LIMIT 3 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 || r.Rows[0][0].S != "O0001" {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestOLAPStalenessAndCatchUp(t *testing.T) {
	c := newTestCluster(t, 2, OLAP)
	loadOrders(t, c, 30)
	// OLAP nodes have not polled: data committed to the log but not yet
	// visible (availability over freshness, §IV-B).
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsInt() != 0 {
		t.Fatalf("stale count=%v (OLAP applied too early)", r.Rows[0][0])
	}
	// After draining the log, the data appears.
	if err := c.SyncOLAP(); err != nil {
		t.Fatal(err)
	}
	r, _ = c.Query(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].AsInt() != 30 {
		t.Fatalf("count after sync=%v", r.Rows[0][0])
	}
}

func TestDeleteByKey(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 10)
	if _, err := c.Coordinator.Delete("orders", "O0003"); err != nil {
		t.Fatal(err)
	}
	r, _ := c.Query(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].AsInt() != 9 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
	r, _ = c.Query(`SELECT COUNT(*) FROM orders WHERE id = 'O0003'`)
	if r.Rows[0][0].AsInt() != 0 {
		t.Fatal("deleted row visible")
	}
}

func loadJoinTables(t *testing.T, c *Cluster, orders, itemsPerOrder int, coPartition bool) {
	t.Helper()
	if _, err := c.CreateTable("orders", ordersSchema(), "id", 2*len(c.Nodes)); err != nil {
		t.Fatal(err)
	}
	itemKey := "id"
	if coPartition {
		itemKey = "order_id"
	}
	if _, err := c.CreateTable("items", itemsSchema(), itemKey, 2*len(c.Nodes)); err != nil {
		t.Fatal(err)
	}
	var orows, irows []value.Row
	for i := 0; i < orders; i++ {
		oid := fmt.Sprintf("O%04d", i)
		orows = append(orows, value.Row{value.String(oid), value.String([]string{"EMEA", "AMER"}[i%2]), value.Float(float64(i))})
		for j := 0; j < itemsPerOrder; j++ {
			irows = append(irows, value.Row{value.String(fmt.Sprintf("%s-I%d", oid, j)), value.String(oid), value.Int(int64(j + 1))})
		}
	}
	if _, err := c.Insert("orders", orows...); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("items", irows...); err != nil {
		t.Fatal(err)
	}
}

func TestJoinStrategies(t *testing.T) {
	for _, strat := range []distql.Strategy{distql.StrategyBroadcast, distql.StrategyRepartition} {
		t.Run(strat.String(), func(t *testing.T) {
			c := newTestCluster(t, 3, OLTP)
			loadJoinTables(t, c, 20, 3, false)
			sql := `SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region ORDER BY o.region`
			r, plan, err := c.Coordinator.ForceStrategy(sql, strat)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Strategy != strat {
				t.Fatalf("plan=%v", plan.Strategy)
			}
			// 10 orders per region × items qty sum (1+2+3=6) = 60.
			if len(r.Rows) != 2 || r.Rows[0][1].AsInt() != 60 || r.Rows[1][1].AsInt() != 60 {
				t.Fatalf("rows=%v", r.Rows)
			}
		})
	}
}

func TestColocatedJoinChosenAutomatically(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	loadJoinTables(t, c, 20, 3, true) // items partitioned by order_id
	sql := `SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region ORDER BY o.region`
	r, plan, err := c.Coordinator.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != distql.StrategyColocated {
		t.Fatalf("expected colocated, got %v", plan.Strategy)
	}
	if len(r.Rows) != 2 || r.Rows[0][1].AsInt() != 60 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestBroadcastChosenForSmallSide(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	loadJoinTables(t, c, 20, 3, false)
	c.Coordinator.BroadcastThreshold = 1000
	_, plan, err := c.Coordinator.Query(`SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != distql.StrategyBroadcast {
		t.Fatalf("strategy=%v", plan.Strategy)
	}
	// Force tiny threshold: repartition.
	c.Coordinator.BroadcastThreshold = 1
	_, plan, err = c.Coordinator.Query(`SELECT o.region, SUM(i.qty) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.region`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != distql.StrategyRepartition {
		t.Fatalf("strategy=%v", plan.Strategy)
	}
}

func TestAuthRejectsBadToken(t *testing.T) {
	c := newTestCluster(t, 1, OLTP)
	loadOrders(t, c, 3)
	resp, err := call[ExecResp](c.Net, "attacker", c.Nodes[0].Name, MsgExec, ExecReq{Token: "wrong", SQL: "SELECT * FROM orders"})
	if err == nil && resp.Err == "" {
		t.Fatal("unauthorized exec accepted")
	}
}

func TestManagerStatusAndHotspots(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	loadOrders(t, c, 30)
	// Hammer node0 directly.
	for i := 0; i < 20; i++ {
		call[ExecResp](c.Net, "client", c.Nodes[0].Name, MsgExec, ExecReq{Token: c.Disc.Token(), SQL: "SELECT COUNT(*) FROM orders"})
	}
	sts := c.Manager.Status()
	if len(sts) != 3 {
		t.Fatalf("status=%v", sts)
	}
	hot := c.Manager.HotSpots(2)
	if len(hot) != 1 || hot[0] != "node0" {
		t.Fatalf("hotspots=%v", hot)
	}
}

func TestMovePartition(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 40)
	tbl, _ := c.Catalog.Table("orders")
	part := 0
	from := tbl.NodeOf[part]
	to := "node1"
	if from == to {
		to = "node0"
	}
	before, _ := c.Query(`SELECT COUNT(*) FROM orders`)
	if err := c.Manager.MovePartition("orders", part, from, to); err != nil {
		t.Fatal(err)
	}
	after, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if before.Rows[0][0].AsInt() != after.Rows[0][0].AsInt() {
		t.Fatalf("rows lost in movement: %v -> %v", before.Rows[0][0], after.Rows[0][0])
	}
	if tbl.NodeOf[part] != to {
		t.Fatal("catalog not updated")
	}
}

func TestQueryServiceFailover(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	loadOrders(t, c, 30)
	victim := c.Nodes[2].Name
	c.Manager.StopNode(victim)
	// Queries touching the victim fail...
	if _, err := c.Query(`SELECT COUNT(*) FROM orders`); err == nil {
		t.Fatal("query over crashed node should fail")
	}
	// ...until its partitions move to survivors.
	tbl, _ := c.Catalog.Table("orders")
	c.Manager.RecoverNode(victim) // recover to extract rows, then drain
	for p, n := range tbl.NodeOf {
		if n == victim {
			if err := c.Manager.MovePartition("orders", p, victim, "node0"); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Manager.StopNode(victim)
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsInt() != 30 {
		t.Fatalf("count=%v after failover", r.Rows[0][0])
	}
}

func TestOLTPNodeCrashDoesNotBlockCommits(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 10)
	c.Net.Crash(c.Nodes[1].Name)
	// Availability over consistency: the commit succeeds even though one
	// OLTP node cannot apply it.
	if _, err := c.Insert("orders", value.Row{value.String("O9999"), value.String("EMEA"), value.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if c.Broker.Commits() != 2 {
		t.Fatalf("commits=%d", c.Broker.Commits())
	}
}

func TestDiscoveryServices(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	svcs := c.Disc.Services()
	want := map[string]bool{"v2transact": true, "v2dqp": true, "v2clustermgr": true, "v2stats": true, "v2lqp/node0": true, "v2lqp/node1": true}
	for _, s := range svcs {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Fatalf("missing services: %v (got %v)", want, svcs)
	}
	if n, ok := c.Disc.Lookup("v2transact"); !ok || n != "v2transact" {
		t.Fatal("lookup failed")
	}
}

func TestWaitForFreshness(t *testing.T) {
	c := newTestCluster(t, 2, OLAP)
	loadOrders(t, c, 5)
	ts := c.Broker.Clock()
	lag := c.Manager.WaitForFreshness(ts, 10*time.Millisecond)
	if len(lag) != 2 {
		t.Fatalf("expected both nodes lagging, got %v", lag)
	}
	c.SyncOLAP()
	lag = c.Manager.WaitForFreshness(ts, 100*time.Millisecond)
	if len(lag) != 0 {
		t.Fatalf("laggards after sync: %v", lag)
	}
}

func TestSnapshotCatchUp(t *testing.T) {
	// §IV-B: a replica can update itself "by retrieving the latest
	// snapshot of the data hosted by a particular node" instead of
	// replaying the log.
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 60)

	// A fresh OLAP replica hosts copies of every orders partition.
	replica := NewDataNode("replica0", OLAP, c.Net, c.Disc, c.Catalog, c.Broker.Name)
	c.Manager.Track(replica)
	tbl, _ := c.Catalog.Table("orders")
	for p := 0; p < tbl.Partitions; p++ {
		if err := replica.HostReplica(tbl, p); err != nil {
			t.Fatal(err)
		}
	}
	// Empty before catch-up.
	r := replica.Engine().MustQuery(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].I != 0 {
		t.Fatalf("replica pre-catchup count=%v", r.Rows[0][0])
	}
	// Snapshot catch-up from the hosting peers.
	for p := 0; p < tbl.Partitions; p++ {
		if err := replica.CatchUpSnapshot(tbl.NodeOf[p], "orders", p); err != nil {
			t.Fatal(err)
		}
	}
	r = replica.Engine().MustQuery(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].I != 60 {
		t.Fatalf("replica post-catchup count=%v", r.Rows[0][0])
	}
	// New commits reach the replica through incremental polling only —
	// no re-replay of the already-snapshotted prefix.
	before := replica.appliedPos
	if before == 0 {
		t.Fatal("snapshot did not carry a log position")
	}
	c.Insert("orders", value.Row{value.String("O9990"), value.String("EMEA"), value.Float(1)})
	applied, err := replica.PollOnce(1024)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("replica replayed %d entries (should be just the new one)", applied)
	}
	r = replica.Engine().MustQuery(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].I != 61 {
		t.Fatalf("replica count after poll=%v", r.Rows[0][0])
	}
	// Repeated catch-up replaces, not duplicates.
	if err := replica.CatchUpSnapshot(tbl.NodeOf[0], "orders", 0); err != nil {
		t.Fatal(err)
	}
	r = replica.Engine().MustQuery(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].I != 61 {
		t.Fatalf("duplicate rows after re-catchup: %v", r.Rows[0][0])
	}
}

func TestSnapshotFromNonHostingPeerErrors(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 5)
	n := c.Nodes[0]
	if err := n.CatchUpSnapshot(c.Nodes[1].Name, "orders", 999); err == nil {
		t.Fatal("phantom partition accepted")
	}
}

func TestRangePartitionedDistTable(t *testing.T) {
	c := newTestCluster(t, 4, OLTP)
	schema := columnstore.Schema{
		{Name: "yr", Kind: value.KindInt},
		{Name: "amount", Kind: value.KindFloat},
	}
	// 4 partitions: (-inf,2012) [2012,2013) [2013,2014) [2014,+inf).
	tbl, err := c.CreateRangeTable("sales", schema, "yr", []int64{2012, 2013, 2014})
	if err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 120; i++ {
		rows = append(rows, value.Row{value.Int(int64(2010 + i%6)), value.Float(float64(i))})
	}
	if _, err := c.Insert("sales", rows...); err != nil {
		t.Fatal(err)
	}
	// Routing: 2010,2011 -> p0; 2012 -> p1; 2013 -> p2; 2014,2015 -> p3.
	if tbl.PartitionFor(value.Int(2011)) != 0 || tbl.PartitionFor(value.Int(2012)) != 1 ||
		tbl.PartitionFor(value.Int(2013)) != 2 || tbl.PartitionFor(value.Int(2015)) != 3 {
		t.Fatal("range routing broken")
	}
	r, err := c.Query(`SELECT COUNT(*) FROM sales WHERE yr = 2013`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsInt() != 20 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
	// Distributed pruning: a bounded query touches only the hosting node.
	c.Net.ResetStats()
	if _, err := c.Query(`SELECT SUM(amount) FROM sales WHERE yr >= 2014`); err != nil {
		t.Fatal(err)
	}
	msgsBounded, _ := c.Net.Stats()
	c.Net.ResetStats()
	if _, err := c.Query(`SELECT SUM(amount) FROM sales`); err != nil {
		t.Fatal(err)
	}
	msgsFull, _ := c.Net.Stats()
	if msgsBounded >= msgsFull {
		t.Fatalf("pruning did not reduce fan-out: %d vs %d messages", msgsBounded, msgsFull)
	}
	// Contradictory bounds: empty result, zero node fan-out.
	r, err = c.Query(`SELECT yr FROM sales WHERE yr > 2015 AND yr < 2010`)
	if err != nil || len(r.Rows) != 0 {
		t.Fatalf("rows=%v err=%v", r.Rows, err)
	}
	// BETWEEN also prunes.
	r, _ = c.Query(`SELECT COUNT(*) FROM sales WHERE yr BETWEEN 2012 AND 2012`)
	if r.Rows[0][0].AsInt() != 20 {
		t.Fatalf("between count=%v", r.Rows[0][0])
	}
}

func TestRangeBoundsValidation(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	schema := columnstore.Schema{{Name: "k", Kind: value.KindInt}}
	if _, err := c.CreateRangeTable("bad", schema, "k", []int64{5, 5}); err == nil {
		t.Fatal("non-ascending bounds accepted")
	}
	if _, err := c.CreateRangeTable("bad2", schema, "nope", []int64{5}); err == nil {
		t.Fatal("missing key accepted")
	}
}

func TestClusterSurfaces(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 10)
	if got := c.Catalog.Tables(); len(got) != 1 || got[0] != "orders" {
		t.Fatalf("tables=%v", got)
	}
	tbl, _ := c.Catalog.Table("orders")
	tbl.SetRowEstimate(123)
	if tbl.rows() != 123 {
		t.Fatal("estimate")
	}
	if c.Manager.LogTail() != c.Log.Tail() {
		t.Fatal("log tail")
	}
	if c.Nodes[0].AppliedTS() == 0 {
		t.Fatal("applied ts")
	}
	// Coordinator reachable over the wire too.
	resp, err := call[ExecResp](c.Net, "client", "v2dqp", MsgExec, ExecReq{Token: c.Disc.Token(), SQL: "SELECT COUNT(*) FROM orders"})
	if err != nil || resp.Err != "" || resp.Rows[0][0].AsInt() != 10 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	// Bad token and bad SQL via the wire.
	resp, _ = call[ExecResp](c.Net, "client", "v2dqp", MsgExec, ExecReq{Token: "nope", SQL: "SELECT 1"})
	if resp.Err == "" {
		t.Fatal("unauthorized coordinator call accepted")
	}
	resp, _ = call[ExecResp](c.Net, "client", "v2dqp", MsgExec, ExecReq{Token: c.Disc.Token(), SQL: "garbage"})
	if resp.Err == "" {
		t.Fatal("bad SQL accepted")
	}
}

func TestBulkLoadLocalVisibleToQueries(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	if _, err := c.CreateTable("bulk", ordersSchema(), "id", 6); err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 500; i++ {
		rows = append(rows, value.Row{value.String(fmt.Sprintf("B%04d", i)), value.String("EMEA"), value.Float(1)})
	}
	if err := c.BulkLoadLocal("bulk", rows); err != nil {
		t.Fatal(err)
	}
	r, err := c.Query(`SELECT COUNT(*) FROM bulk`)
	if err != nil || r.Rows[0][0].AsInt() != 500 {
		t.Fatalf("count=%v err=%v", r.Rows[0][0], err)
	}
	if err := c.BulkLoadLocal("ghost", rows); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestOLAPPollingLoop(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 1, Mode: OLAP, PollInterval: time.Millisecond})
	defer c.Shutdown()
	if _, err := c.CreateTable("orders", ordersSchema(), "id", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("orders", value.Row{value.String("X"), value.String("EMEA"), value.Float(1)}); err != nil {
		t.Fatal(err)
	}
	// The background poller catches up without explicit SyncOLAP.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, err := c.Query(`SELECT COUNT(*) FROM orders`)
		if err == nil && r.Rows[0][0].AsInt() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poller never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// StartPolling is idempotent; StopPolling twice is safe.
	c.Nodes[0].StartPolling(time.Millisecond)
	c.Nodes[0].StopPolling()
	c.Nodes[0].StopPolling()
}

func TestDropTemp(t *testing.T) {
	c := newTestCluster(t, 1, OLTP)
	n := c.Nodes[0]
	req := CreateTempReq{Token: c.Disc.Token(), Name: "tmp_x", Cols: []string{"a"}, Kinds: []uint8{1}, Rows: []value.Row{{value.Int(1)}}}
	if resp, err := call[ExecResp](c.Net, "t", n.Name, MsgCreateTemp, req); err != nil || resp.Err != "" {
		t.Fatalf("create temp: %v %v", resp.Err, err)
	}
	if r := n.Engine().MustQuery(`SELECT COUNT(*) FROM tmp_x`); r.Rows[0][0].I != 1 {
		t.Fatal("temp missing")
	}
	n.DropTemp("tmp_x")
	if _, err := n.Engine().Query(`SELECT * FROM tmp_x`); err == nil {
		t.Fatal("dropped temp resolvable")
	}
}

func TestPartitionsInRangeHash(t *testing.T) {
	tbl := &DistTable{Name: "h", Schema: ordersSchema(), PartKey: "id", Partitions: 4, NodeOf: []string{"a", "b", "a", "b"}}
	if got := tbl.PartitionsInRange(1, 9); len(got) != 4 {
		t.Fatalf("range over hash=%v", got)
	}
	if got := tbl.PartitionsInRange(5, 5); len(got) != 1 {
		t.Fatalf("point over hash=%v", got)
	}
}

func TestDistributedMatchesLocalReferenceProperty(t *testing.T) {
	// Property: for random aggregation queries, the distributed execution
	// over 3 nodes equals a single local engine holding the same rows.
	c := newTestCluster(t, 3, OLTP)
	ref := sqlexec.NewEngine()
	ref.MustQuery(`CREATE TABLE orders (id VARCHAR, region VARCHAR, amount DOUBLE)`)
	if _, err := c.CreateTable("orders", ordersSchema(), "id", 6); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	var rows []value.Row
	sess := ref.NewSession()
	sess.Begin()
	for i := 0; i < 300; i++ {
		row := value.Row{
			value.String(fmt.Sprintf("O%04d", i)),
			value.String([]string{"EMEA", "AMER", "APJ"}[rng.Intn(3)]),
			value.Float(float64(rng.Intn(1000))),
		}
		rows = append(rows, row)
		sess.Query(`INSERT INTO orders VALUES (?, ?, ?)`, row...)
	}
	sess.Commit()
	sess.Close()
	if _, err := c.Insert("orders", rows...); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT region, COUNT(*), SUM(amount), MIN(amount), MAX(amount) FROM orders GROUP BY region`,
		`SELECT COUNT(*) FROM orders WHERE amount > %d`,
		`SELECT region, AVG(amount) FROM orders WHERE amount BETWEEN %d AND %d GROUP BY region`,
		`SELECT id FROM orders WHERE amount = %d`,
	}
	for trial := 0; trial < 25; trial++ {
		lo := rng.Intn(900)
		hi := lo + rng.Intn(100)
		q := queries[trial%len(queries)]
		switch trial % len(queries) {
		case 1, 3:
			q = fmt.Sprintf(q, lo)
		case 2:
			q = fmt.Sprintf(q, lo, hi)
		}
		dist, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		local, err := ref.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(dist.Rows) != len(local.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(dist.Rows), len(local.Rows))
		}
		seen := map[string]int{}
		for _, r := range dist.Rows {
			seen[canonKey(r)]++
		}
		for _, r := range local.Rows {
			seen[canonKey(r)]--
		}
		for k, n := range seen {
			if n != 0 {
				t.Fatalf("%s: result multisets differ at %q", q, k)
			}
		}
	}
}

// canonKey normalizes numeric kinds (distributed results travel as JSON
// and may come back float-typed) before comparison.
func canonKey(r value.Row) string {
	out := make(value.Row, len(r))
	for i, v := range r {
		if v.Numeric() {
			out[i] = value.Float(v.AsFloat())
		} else {
			out[i] = v
		}
	}
	return out.Key()
}
