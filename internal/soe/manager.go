package soe

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/sharedlog"
	"repro/internal/stats"
)

// Manager is the v2clustermgr service: it supervises the landscape,
// detects hotspots, starts and stops query services, and orchestrates
// partition movement. Statistics collection lives in the dedicated
// StatsService (v2stats); the manager consumes its aggregate snapshot.
type Manager struct {
	Name string
	net  *netsim.Network
	disc *Discovery
	ccat *ClusterCatalog

	mu       sync.Mutex
	nodes    map[string]*DataNode
	log      *sharedlog.Log
	brk      *Broker
	statsSvc *StatsService
}

// NewManager creates the cluster manager.
func NewManager(name string, net *netsim.Network, disc *Discovery, ccat *ClusterCatalog, brk *Broker, log *sharedlog.Log) *Manager {
	m := &Manager{Name: name, net: net, disc: disc, ccat: ccat, nodes: map[string]*DataNode{}, log: log, brk: brk}
	disc.Announce("v2clustermgr", name)
	return m
}

// SetStatsService wires the v2stats service; once set, hotspot detection
// reads the landscape metrics snapshot instead of polling node status,
// and nodes started by the manager are subscribed as metric sources.
func (m *Manager) SetStatsService(s *StatsService) {
	m.mu.Lock()
	m.statsSvc = s
	m.mu.Unlock()
}

// Track registers a node object with the manager (orchestration needs the
// handle, the network name is not enough for partition movement).
func (m *Manager) Track(n *DataNode) {
	m.mu.Lock()
	m.nodes[n.Name] = n
	m.mu.Unlock()
}

// Node returns a tracked node.
func (m *Manager) Node(name string) (*DataNode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	return n, ok
}

// StartNode dynamically brings up a new query-processing service
// ("this service can dynamically start and stop other query processing
// services").
func (m *Manager) StartNode(name string, mode Mode) *DataNode {
	n := NewDataNode(name, mode, m.net, m.disc, m.ccat, m.brk.Name)
	if mode == OLTP {
		m.brk.AddOLTPNode(name)
	}
	m.Track(n)
	m.mu.Lock()
	svc := m.statsSvc
	m.mu.Unlock()
	if svc != nil {
		svc.AddSource(name)
	}
	return n
}

// StopNode crashes a node (its partitions become unavailable until moved
// or the node recovers).
func (m *Manager) StopNode(name string) {
	m.net.Crash(name)
}

// RecoverNode brings a crashed node back; OLAP nodes catch up from the
// log on their next poll.
func (m *Manager) RecoverNode(name string) {
	m.net.Recover(name)
}

// Status polls every tracked node ("statistical information about the
// current cluster usage").
func (m *Manager) Status() []StatusResp {
	m.mu.Lock()
	names := make([]string, 0, len(m.nodes))
	for n := range m.nodes {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)
	var out []StatusResp
	for _, n := range names {
		st, err := call[StatusResp](m.net, m.Name, n, MsgStatus, struct{}{})
		if err != nil {
			continue // crashed nodes are simply absent
		}
		out = append(out, st)
	}
	return out
}

// HotSpots returns nodes whose query volume exceeds factor × the cluster
// average. With a StatsService wired it reads per-node soe_queries_total
// from the landscape metrics snapshot; otherwise it falls back to the
// legacy per-node status poll.
func (m *Manager) HotSpots(factor float64) []string {
	m.mu.Lock()
	svc := m.statsSvc
	m.mu.Unlock()
	if svc != nil {
		return hotFromCounts(nodeQueryCounts(svc.Collect()), factor)
	}
	counts := map[string]int64{}
	for _, s := range m.Status() {
		counts[s.Node] = s.QueriesRun
	}
	return hotFromCounts(counts, factor)
}

// nodeQueryCounts extracts per-node query volume from a landscape
// snapshot via the node=... base label every data-node registry stamps.
func nodeQueryCounts(snap stats.Snapshot) map[string]int64 {
	counts := map[string]int64{}
	for _, c := range snap.CountersNamed("soe_queries_total") {
		if node, ok := stats.LabelValue(c.Labels, "node"); ok {
			counts[node] += c.Value
		}
	}
	return counts
}

func hotFromCounts(counts map[string]int64, factor float64) []string {
	if len(counts) == 0 {
		return nil
	}
	var total int64
	for _, v := range counts {
		total += v
	}
	avg := float64(total) / float64(len(counts))
	var hot []string
	for node, v := range counts {
		if avg > 0 && float64(v) > factor*avg {
			hot = append(hot, node)
		}
	}
	sort.Strings(hot)
	return hot
}

// MovePartition relocates one partition: rows travel from the source to
// the destination, the data-discovery map updates, and subsequent queries
// route to the new node.
func (m *Manager) MovePartition(table string, part int, from, to string) error {
	t, ok := m.ccat.Table(table)
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	if part < 0 || part >= t.Partitions || t.NodeOf[part] != from {
		return fmt.Errorf("soe: partition %d of %s is not on %s", part, table, from)
	}
	src, ok := m.Node(from)
	if !ok {
		return fmt.Errorf("soe: source node %q not tracked", from)
	}
	dst, ok := m.Node(to)
	if !ok {
		return fmt.Errorf("soe: destination node %q not tracked", to)
	}
	rows, err := src.Unhost(table, part)
	if err != nil {
		return err
	}
	if err := dst.AcceptPartition(t, part, rows); err != nil {
		// The destination refused (e.g. it already holds this partition as
		// a replica). The rows are only in our hands now — restore them to
		// the source so the move fails cleanly instead of dropping data.
		if rerr := src.AcceptPartition(t, part, rows); rerr != nil {
			return fmt.Errorf("soe: move %s p%d: accept on %s failed (%v) and restore to %s failed (%v) — rows lost", table, part, to, err, from, rerr)
		}
		return fmt.Errorf("soe: move %s p%d to %s failed (rows restored to %s): %w", table, part, to, from, err)
	}
	return m.ccat.Move(table, part, to)
}

// WaitForFreshness blocks until every tracked node has applied the log at
// least through ts, or the timeout elapses. Returns the laggards.
func (m *Manager) WaitForFreshness(ts uint64, timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		var lagging []string
		for _, st := range m.Status() {
			if st.AppliedTS < ts {
				lagging = append(lagging, st.Node)
			}
		}
		if len(lagging) == 0 || time.Now().After(deadline) {
			return lagging
		}
		time.Sleep(time.Millisecond)
	}
}

// LogTail returns the shared-log tail position (monitoring).
func (m *Manager) LogTail() uint64 { return m.log.Tail() }
