package soe

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/value"
)

// DistTable describes one horizontally partitioned table: the catalog
// service's schema information plus the data-discovery service's
// partition→node map (v2catalog).
type DistTable struct {
	Name       string
	Schema     columnstore.Schema
	PartKey    string // partitioning column
	Partitions int
	// RangeBounds, when non-nil, selects range partitioning on an integer
	// key: partition i covers [RangeBounds[i-1], RangeBounds[i]), with
	// open first and last partitions (len == Partitions-1). Nil selects
	// hash partitioning. §IV-B: "multi-level horizontal partitioning
	// (range and hash)".
	RangeBounds []int64
	// NodeOf[p] names the node hosting partition p.
	NodeOf []string

	// replicas[p] lists nodes holding read replicas of partition p
	// (HostReplica placements). Guarded by the owning catalog's mutex;
	// the coordinator consults it for failover routing.
	replicas map[int][]string

	// tiers[p] records the storage tier of partition p; absent means hot.
	// Guarded by the owning catalog's mutex.
	tiers map[int]catalog.Tier

	rowEstimate atomic.Int64 // maintained by the coordinator on insert
}

// addRows bumps the optimizer's row estimate.
func (t *DistTable) addRows(n int64) { t.rowEstimate.Add(n) }

// rows returns the estimated row count.
func (t *DistTable) rows() int64 { return t.rowEstimate.Load() }

// SetRowEstimate overrides the estimate (bulk loads, tests).
func (t *DistTable) SetRowEstimate(n int64) { t.rowEstimate.Store(n) }

// PartitionFor routes a row by its partition-key value.
func (t *DistTable) PartitionFor(v value.Value) int {
	if t.RangeBounds != nil {
		k := v.AsInt()
		return sort.Search(len(t.RangeBounds), func(i int) bool { return k < t.RangeBounds[i] })
	}
	h := v.Hash()
	return int(h % uint64(t.Partitions))
}

// PartitionsInRange returns the partitions that can hold keys in
// [lo, hi] (inclusive; math.MinInt64/MaxInt64 for open ends). For hash
// partitioning every partition qualifies unless lo == hi (a point
// lookup).
func (t *DistTable) PartitionsInRange(lo, hi int64) []int {
	if t.RangeBounds == nil {
		if lo == hi {
			return []int{t.PartitionFor(value.Int(lo))}
		}
		out := make([]int, t.Partitions)
		for i := range out {
			out[i] = i
		}
		return out
	}
	first := t.PartitionFor(value.Int(lo))
	last := t.PartitionFor(value.Int(hi))
	out := make([]int, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// KeyIndex returns the schema position of the partition key.
func (t *DistTable) KeyIndex() int { return t.Schema.ColIndex(t.PartKey) }

// ClusterCatalog is the v2catalog service: schemas and data distribution.
type ClusterCatalog struct {
	mu     sync.RWMutex
	tables map[string]*DistTable
}

// NewClusterCatalog returns an empty catalog.
func NewClusterCatalog() *ClusterCatalog {
	return &ClusterCatalog{tables: map[string]*DistTable{}}
}

// Define registers a distributed table.
func (c *ClusterCatalog) Define(t *DistTable) error {
	if t.Schema.ColIndex(t.PartKey) < 0 {
		return fmt.Errorf("soe: partition key %q not in schema of %s", t.PartKey, t.Name)
	}
	if len(t.NodeOf) != t.Partitions {
		return fmt.Errorf("soe: %s: %d partitions but %d placements", t.Name, t.Partitions, len(t.NodeOf))
	}
	if t.RangeBounds != nil {
		if len(t.RangeBounds) != t.Partitions-1 {
			return fmt.Errorf("soe: %s: %d range bounds for %d partitions (need n-1)", t.Name, len(t.RangeBounds), t.Partitions)
		}
		for i := 1; i < len(t.RangeBounds); i++ {
			if t.RangeBounds[i] <= t.RangeBounds[i-1] {
				return fmt.Errorf("soe: %s: range bounds must be strictly ascending", t.Name)
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("soe: table %q already defined", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// Table resolves a distributed table.
func (c *ClusterCatalog) Table(name string) (*DistTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Tables lists table names, sorted.
func (c *ClusterCatalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Move reassigns a partition to another node (data discovery update; the
// cluster manager performs the physical copy).
func (c *ClusterCatalog) Move(table string, part int, toNode string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	if part < 0 || part >= t.Partitions {
		return fmt.Errorf("soe: partition %d out of range", part)
	}
	t.NodeOf[part] = toNode
	return nil
}

// AddReplica registers a read-replica placement: node holds a copy of the
// partition in addition to its primary host. The coordinator routes
// failed-over reads here.
func (c *ClusterCatalog) AddReplica(table string, part int, node string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	if part < 0 || part >= t.Partitions {
		return fmt.Errorf("soe: partition %d out of range", part)
	}
	if t.NodeOf[part] == node {
		return fmt.Errorf("soe: %s already hosts %s partition %d as primary", node, table, part)
	}
	if t.replicas == nil {
		t.replicas = map[int][]string{}
	}
	for _, r := range t.replicas[part] {
		if r == node {
			return nil // idempotent
		}
	}
	t.replicas[part] = append(t.replicas[part], node)
	return nil
}

// Replicas returns the replica nodes registered for one partition.
func (c *ClusterCatalog) Replicas(table string, part int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok || t.replicas == nil {
		return nil
	}
	return append([]string(nil), t.replicas[part]...)
}

// NodesOf returns the distinct nodes hosting a table, sorted.
func (c *ClusterCatalog) NodesOf(table string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, n := range t.NodeOf {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// CoPartitioned reports whether two tables share partition count and
// placement and are keyed on the given join columns — the co-located join
// precondition.
func (c *ClusterCatalog) CoPartitioned(a, b, aKey, bKey string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ta, ok1 := c.tables[a]
	tb, ok2 := c.tables[b]
	if !ok1 || !ok2 {
		return false
	}
	if ta.PartKey != aKey || tb.PartKey != bKey {
		return false
	}
	if ta.Partitions != tb.Partitions {
		return false
	}
	for i := range ta.NodeOf {
		if ta.NodeOf[i] != tb.NodeOf[i] {
			return false
		}
	}
	return true
}

// Discovery is the v2disc&auth service: who is where, and with which
// credentials.
type Discovery struct {
	mu       sync.RWMutex
	secret   string
	services map[string]string // service role -> node name
}

// NewDiscovery creates the service with a cluster secret.
func NewDiscovery(secret string) *Discovery {
	return &Discovery{secret: secret, services: map[string]string{}}
}

// Token derives the access token clients present.
func (d *Discovery) Token() string {
	h := sha256.Sum256([]byte("soe-token:" + d.secret))
	return fmt.Sprintf("%x", h[:8])
}

// Validate checks a presented token.
func (d *Discovery) Validate(token string) bool { return token == d.Token() }

// Announce registers a service instance.
func (d *Discovery) Announce(role, node string) {
	d.mu.Lock()
	d.services[role] = node
	d.mu.Unlock()
}

// Lookup resolves a service role to its node.
func (d *Discovery) Lookup(role string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, ok := d.services[role]
	return n, ok
}

// Services lists announced roles, sorted.
func (d *Discovery) Services() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.services))
	for r := range d.services {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
