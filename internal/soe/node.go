package soe

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/extstore"
	"repro/internal/netsim"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

// Mode selects a node's consistency behavior (§IV-B): OLTP nodes apply
// the shared log synchronously inside the commit; OLAP nodes update
// themselves asynchronously by polling, trading freshness for throughput.
type Mode int

// Node modes.
const (
	OLTP Mode = iota
	OLAP
)

// DataNode is one v2lqp instance: a query service (local SQL over the
// hosted partitions) plus a data service (storing and serving horizontal
// partitions, applying the shared log).
type DataNode struct {
	Name   string
	Mode   Mode
	net    *netsim.Network
	disc   *Discovery
	ccat   *ClusterCatalog
	broker string

	eng *sqlexec.Engine

	mu         sync.Mutex
	hosted     map[string]map[int]*columnstore.Table // table -> part -> storage
	warm       *extstore.Store                       // node-local extended store, lazily created
	appliedPos uint64
	appliedTS  uint64

	queries     atomic.Int64
	rowsScanned atomic.Int64

	// Per-node observability registry (v2stats pulls it via MsgStatsPull).
	// Hot-path metrics are cached as fields so the MsgExec path never
	// rebuilds name+label keys.
	obs        *stats.Registry
	cQueries   *stats.Counter
	cRowsScan  *stats.Counter
	cApplied   *stats.Counter
	gAppliedTS *stats.Gauge
	gBacklog   *stats.Gauge
	hExec      *stats.Histogram

	// tracer records this node's side of distributed operations: exec and
	// catch-up requests arriving with a SpanContext continue the caller's
	// trace here. Nil disables (stand-alone nodes).
	tracer *stats.Tracer

	pollStop chan struct{}
}

// partTableName names a physical partition in the node-local engine.
func partTableName(table string, part int) string {
	return fmt.Sprintf("%s__p%d", table, part)
}

// NewDataNode creates and registers a node on the network.
func NewDataNode(name string, mode Mode, net *netsim.Network, disc *Discovery, ccat *ClusterCatalog, broker string) *DataNode {
	n := &DataNode{
		Name: name, Mode: mode, net: net, disc: disc, ccat: ccat, broker: broker,
		eng:    sqlexec.NewEngine(),
		hosted: map[string]map[int]*columnstore.Table{},
		obs:    stats.NewRegistry("node=" + name),
	}
	n.cQueries = n.obs.Counter("soe_queries_total")
	n.cRowsScan = n.obs.Counter("soe_rows_scanned_total")
	n.cApplied = n.obs.Counter("soe_log_entries_applied_total")
	n.gAppliedTS = n.obs.Gauge("soe_applied_ts")
	n.gBacklog = n.obs.Gauge("soe_poll_backlog")
	n.hExec = n.obs.Histogram("soe_exec_ms")
	// The node-local SQL engine reports into the same registry, so parse/
	// plan/exec timings surface per node in the v2stats aggregate.
	n.eng.Obs = n.obs
	net.Register(name, n.handle)
	disc.Announce("v2lqp/"+name, name)
	return n
}

// Obs exposes the node's metrics registry (tests, embedding).
func (n *DataNode) Obs() *stats.Registry { return n.obs }

// SetTracer attaches the landscape tracer so remote requests carrying a
// SpanContext continue their trace on this node; nil disables.
func (n *DataNode) SetTracer(t *stats.Tracer) { n.tracer = t }

// Engine exposes the node-local relational engine (tests, local tools).
func (n *DataNode) Engine() *sqlexec.Engine { return n.eng }

// SetExecutor configures the node-local executor: the mode (vectorized by
// default) and, for the vectorized mode, the morsel worker-pool size per
// query (<=0 means one worker per CPU). Cluster setups use it to pin
// per-partition scans to a known parallelism for experiments.
func (n *DataNode) SetExecutor(mode sqlexec.Mode, workers int) {
	n.eng.Mode = mode
	n.eng.Workers = workers
}

// Host installs the partitions of a distributed table assigned to this
// node: prepackaged partitions ready for "fast distribution of the data
// when scaling out or for data recovery" (§IV-B).
func (n *DataNode) Host(t *DistTable) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hosted[t.Name] == nil {
		n.hosted[t.Name] = map[int]*columnstore.Table{}
	}
	for p, node := range t.NodeOf {
		if node != n.Name {
			continue
		}
		if _, ok := n.hosted[t.Name][p]; ok {
			continue
		}
		if err := n.attachPartition(t, p, nil); err != nil {
			return err
		}
	}
	return nil
}

// attachPartition wires one physical partition into the local engine,
// optionally pre-seeding rows (partition movement). Caller holds n.mu.
func (n *DataNode) attachPartition(t *DistTable, p int, seed []value.Row) error {
	pname := partTableName(t.Name, p)
	store := columnstore.NewTable(pname, t.Schema)
	if len(seed) > 0 {
		store.ApplyInsert(seed, 1)
	}
	part := &catalog.Partition{Name: pname, Table: store, Tier: catalog.TierHot}
	if entry, ok := n.eng.Cat.Table(t.Name); ok {
		entry.Partitions = append(entry.Partitions, part)
	} else {
		entry := &catalog.TableEntry{Name: t.Name, Schema: t.Schema.Clone(), Partitions: []*catalog.Partition{part}, Metadata: map[string]string{}}
		if err := n.registerEntry(entry); err != nil {
			return err
		}
	}
	// The physical partition is addressable on its own too (partition
	// movement, debugging).
	pentry := &catalog.TableEntry{Name: pname, Schema: t.Schema.Clone(), Partitions: []*catalog.Partition{part}, Metadata: map[string]string{}}
	if err := n.registerEntry(pentry); err != nil {
		return err
	}
	n.eng.Mgr.Register(store)
	n.hosted[t.Name][p] = store
	return nil
}

// registerEntry adds a pre-built entry to the node catalog.
func (n *DataNode) registerEntry(e *catalog.TableEntry) error {
	// catalog.Catalog has no direct insert for pre-built entries; create
	// then swap partitions.
	created, err := n.eng.Cat.CreateTable(e.Name, e.Schema)
	if err != nil {
		return err
	}
	created.Partitions = e.Partitions
	return nil
}

// Unhost detaches a partition (after movement) and returns its rows.
func (n *DataNode) Unhost(table string, part int) ([]value.Row, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	store, ok := n.hosted[table][part]
	if !ok {
		return nil, fmt.Errorf("soe: %s does not host %s partition %d", n.Name, table, part)
	}
	snap := store.Snapshot(n.eng.Mgr.Now())
	var rows []value.Row
	for pos := 0; pos < snap.NumRows(); pos++ {
		if snap.Visible(pos) {
			rows = append(rows, snap.Row(pos))
		}
	}
	delete(n.hosted[table], part)
	pname := partTableName(table, part)
	if entry, ok := n.eng.Cat.Table(table); ok {
		kept := entry.Partitions[:0]
		for _, p := range entry.Partitions {
			if p.Name != pname {
				kept = append(kept, p)
			}
		}
		entry.Partitions = kept
	}
	n.eng.Cat.DropTable(pname)
	n.eng.Mgr.Deregister(pname)
	return rows, nil
}

// AcceptPartition installs a moved partition with its rows.
func (n *DataNode) AcceptPartition(t *DistTable, part int, rows []value.Row) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hosted[t.Name] == nil {
		n.hosted[t.Name] = map[int]*columnstore.Table{}
	}
	if _, ok := n.hosted[t.Name][part]; ok {
		return fmt.Errorf("soe: %s already hosts %s partition %d", n.Name, t.Name, part)
	}
	return n.attachPartition(t, part, rows)
}

// HostReplica installs a read replica of one partition on this node even
// though the data-discovery map routes it elsewhere. Replicas catch up
// either by polling the log or through snapshot fetches (§IV-B).
func (n *DataNode) HostReplica(t *DistTable, part int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hosted[t.Name] == nil {
		n.hosted[t.Name] = map[int]*columnstore.Table{}
	}
	if _, ok := n.hosted[t.Name][part]; ok {
		return fmt.Errorf("soe: %s already hosts %s partition %d", n.Name, t.Name, part)
	}
	return n.attachPartition(t, part, nil)
}

// CatchUpSnapshot replaces this node's copy of one partition with a fresh
// snapshot fetched from a peer — the fast alternative to replaying a long
// log suffix ("retrieving the latest snapshot of the data hosted by a
// particular node", §IV-B). After the call, polling resumes from the
// snapshot's log position.
func (n *DataNode) CatchUpSnapshot(peer, table string, part int) error {
	resp, err := call[SnapshotResp](n.net, n.Name, peer, MsgSnapshot,
		SnapshotReq{Token: n.disc.Token(), Table: table, Partition: part})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("soe: snapshot from %s: %s", peer, resp.Err)
	}
	t, ok := n.ccat.Table(table)
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Replace the partition storage wholesale.
	if _, hosted := n.hosted[table][part]; hosted {
		pname := partTableName(table, part)
		if entry, ok := n.eng.Cat.Table(table); ok {
			kept := entry.Partitions[:0]
			for _, p := range entry.Partitions {
				if p.Name != pname {
					kept = append(kept, p)
				}
			}
			entry.Partitions = kept
		}
		n.eng.Cat.DropTable(pname)
		n.eng.Mgr.Deregister(pname)
		delete(n.hosted[table], part)
	} else if n.hosted[table] == nil {
		n.hosted[table] = map[int]*columnstore.Table{}
	}
	if err := n.attachPartition(t, part, resp.Rows); err != nil {
		return err
	}
	if resp.AppliedTS > n.appliedTS {
		n.appliedTS = resp.AppliedTS
	}
	if resp.NextPos > n.appliedPos {
		n.appliedPos = resp.NextPos
	}
	n.eng.Mgr.AdvanceTo(resp.AppliedTS)
	return nil
}

// AppliedTS returns the node's log high-water mark: the staleness metric
// of experiment E7.
func (n *DataNode) AppliedTS() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.appliedTS
}

// applyEntries installs committed writes hitting locally hosted
// partitions.
func (n *DataNode) applyEntries(entries []LogEntry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, e := range entries {
		for _, w := range e.Writes {
			store, ok := n.hosted[w.Table][w.Partition]
			if !ok {
				continue
			}
			switch w.Kind {
			case 0:
				store.ApplyInsert([]value.Row{w.Row}, e.TS)
			case 1:
				n.deleteByKey(store, w, e.TS)
			}
		}
		if e.TS > n.appliedTS {
			n.appliedTS = e.TS
		}
		if e.Pos+1 > n.appliedPos {
			n.appliedPos = e.Pos + 1
		}
		n.eng.Mgr.AdvanceTo(e.TS)
	}
	n.cApplied.Add(int64(len(entries)))
	n.gAppliedTS.Set(float64(n.appliedTS))
}

func (n *DataNode) deleteByKey(store *columnstore.Table, w LogWrite, ts uint64) {
	t, ok := n.ccat.Table(w.Table)
	if !ok {
		return
	}
	ki := t.KeyIndex()
	snap := store.Snapshot(ts)
	for _, pos := range snap.FindRows(ki, value.String(w.Key)) {
		store.ApplyDelete(pos, ts)
	}
	// Non-string keys: FindRows compares generically, so coerce fallback.
	if len(snap.FindRows(ki, value.String(w.Key))) == 0 {
		for pos := 0; pos < snap.NumRows(); pos++ {
			if snap.Visible(pos) && snap.Get(ki, pos).AsString() == w.Key {
				store.ApplyDelete(pos, ts)
			}
		}
	}
}

// PollOnce pulls and applies the next batch from the broker's log (OLAP
// path). Returns the number of entries applied.
func (n *DataNode) PollOnce(max int) (int, error) {
	n.mu.Lock()
	from := n.appliedPos
	n.mu.Unlock()
	resp, err := call[PollResp](n.net, n.Name, n.broker, MsgPoll, PollReq{Token: n.disc.Token(), From: from, Max: max})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, fmt.Errorf("soe: poll: %s", resp.Err)
	}
	n.applyEntries(resp.Entries)
	n.mu.Lock()
	n.appliedPos = resp.Next
	n.mu.Unlock()
	// OLAP apply lag: log entries still ahead of this node after the poll
	// — the measured form of the bounded-staleness trade-off (§IV-B).
	if resp.Tail >= resp.Next {
		n.gBacklog.Set(float64(resp.Tail - resp.Next))
	}
	return len(resp.Entries), nil
}

// StartPolling launches the OLAP update loop at the given interval.
func (n *DataNode) StartPolling(interval time.Duration) {
	n.mu.Lock()
	if n.pollStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.pollStop = stop
	n.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				n.PollOnce(4096)
			}
		}
	}()
}

// StopPolling halts the update loop.
func (n *DataNode) StopPolling() {
	n.mu.Lock()
	if n.pollStop != nil {
		close(n.pollStop)
		n.pollStop = nil
	}
	n.mu.Unlock()
}

// handle is the node's network dispatcher.
func (n *DataNode) handle(from string, req netsim.Message) (netsim.Message, error) {
	switch req.Kind {
	case MsgExec:
		r, err := decode[ExecReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !n.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgExec, Payload: encode(ExecResp{Err: "unauthorized"})}, nil
		}
		t0 := time.Now()
		// Continue the coordinator's trace on this node: the task span that
		// issued the request becomes this exec span's remote parent.
		sp := n.tracer.StartRemote("exec", req.Trace, "node="+n.Name)
		var resp ExecResp
		if r.Table != "" && len(r.Parts) > 0 {
			resp = n.execScoped(r, sp)
		} else {
			sc := sp.Child("scan")
			res, err := n.eng.Query(r.SQL)
			sc.Finish()
			if err != nil {
				resp = ExecResp{Err: err.Error()}
			} else {
				resp = ExecResp{
					Cols: res.Cols, Rows: res.Rows,
					RowsScanned: res.Stats.RowsScanned, Morsels: res.Stats.Morsels,
				}
			}
		}
		if sp != nil {
			if resp.Err != "" {
				sp.Attrs = append(sp.Attrs, "error="+resp.Err)
			} else {
				sp.Attrs = append(sp.Attrs, fmt.Sprintf("rows_scanned=%d", resp.RowsScanned))
			}
		}
		sp.Finish()
		if resp.Err != "" {
			return netsim.Message{Kind: MsgExec, Payload: encode(resp)}, nil
		}
		n.queries.Add(1)
		n.rowsScanned.Add(int64(resp.RowsScanned))
		n.cQueries.Inc()
		n.cRowsScan.Add(int64(resp.RowsScanned))
		n.hExec.ObserveSince(t0)
		return netsim.Message{Kind: MsgExec, Payload: encode(resp)}, nil

	case MsgCatchUp:
		r, err := decode[CatchUpReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !n.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgCatchUp, Payload: encode(CatchUpResp{Err: "unauthorized"})}, nil
		}
		sp := n.tracer.StartRemote("catch_up", req.Trace, "node="+n.Name, fmt.Sprintf("min_ts=%d", r.MinTS))
		// Drain the log toward the bound; stop when stuck (broker down, or
		// the bound is a timestamp the log has not surfaced yet).
		pl := sp.Child("poll_log")
		for n.AppliedTS() < r.MinTS {
			applied, err := n.PollOnce(4096)
			if err != nil || applied == 0 {
				break
			}
		}
		pl.Finish()
		// Snapshot fallback: fetch the partitions wholesale from live peers
		// instead of replaying a log suffix the broker cannot serve.
		if n.AppliedTS() < r.MinTS {
			for part, peer := range r.Peers {
				sf := sp.Child("snapshot_fetch", "peer="+peer, fmt.Sprintf("part=%d", part))
				n.CatchUpSnapshot(peer, r.Table, part)
				sf.Finish()
			}
		}
		sp.Finish()
		return netsim.Message{Kind: MsgCatchUp, Payload: encode(CatchUpResp{AppliedTS: n.AppliedTS()})}, nil

	case MsgCreateTemp:
		r, err := decode[CreateTempReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !n.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgCreateTemp, Payload: encode(ExecResp{Err: "unauthorized"})}, nil
		}
		if err := n.createTemp(r); err != nil {
			return netsim.Message{Kind: MsgCreateTemp, Payload: encode(ExecResp{Err: err.Error()})}, nil
		}
		return netsim.Message{Kind: MsgCreateTemp, Payload: encode(ExecResp{})}, nil

	case MsgApply:
		r, err := decode[ApplyReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !n.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgApply, Payload: encode(ExecResp{Err: "unauthorized"})}, nil
		}
		n.applyEntries(r.Entries)
		return netsim.Message{Kind: MsgApply, Payload: encode(ExecResp{})}, nil

	case MsgSnapshot:
		r, err := decode[SnapshotReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !n.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgSnapshot, Payload: encode(SnapshotResp{Err: "unauthorized"})}, nil
		}
		n.mu.Lock()
		store, ok := n.hosted[r.Table][r.Partition]
		appliedTS, appliedPos := n.appliedTS, n.appliedPos
		n.mu.Unlock()
		if !ok {
			return netsim.Message{Kind: MsgSnapshot, Payload: encode(SnapshotResp{Err: "partition not hosted"})}, nil
		}
		snap := store.Snapshot(n.eng.Mgr.Now())
		var rows []value.Row
		for pos := 0; pos < snap.NumRows(); pos++ {
			if snap.Visible(pos) {
				rows = append(rows, snap.Row(pos))
			}
		}
		return netsim.Message{Kind: MsgSnapshot, Payload: encode(SnapshotResp{Rows: rows, AppliedTS: appliedTS, NextPos: appliedPos})}, nil

	case MsgStatus:
		n.mu.Lock()
		st := StatusResp{
			Node: n.Name, AppliedTS: n.appliedTS,
			QueriesRun: n.queries.Load(), RowsScanned: n.rowsScanned.Load(),
		}
		for _, parts := range n.hosted {
			st.Partitions += len(parts)
		}
		n.mu.Unlock()
		return netsim.Message{Kind: MsgStatus, Payload: encode(st)}, nil

	case MsgStatsPull:
		r, err := decode[StatsReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !n.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgStatsPull, Payload: encode(StatsResp{Err: "unauthorized"})}, nil
		}
		return netsim.Message{Kind: MsgStatsPull, Payload: encode(StatsResp{Snapshot: n.obs.Snapshot()})}, nil
	}
	return netsim.Message{}, fmt.Errorf("soe: %s: unknown message %q", n.Name, req.Kind)
}

// execScoped runs SQL once per listed partition, substituting the physical
// partition relations for the logical table names, and concatenates the
// results. This is the coordinator's partition-addressed execution mode: a
// node hosting primaries and replicas of the same table scans exactly the
// partitions the task names, never double-counting. Concatenating
// per-partition partial-aggregate rows is safe because the coordinator's
// merge combines partials by group key across all batches.
func (n *DataNode) execScoped(r ExecReq, sp *stats.Span) ExecResp {
	st, err := sqlexec.Parse(r.SQL)
	if err != nil {
		return ExecResp{Err: err.Error()}
	}
	sel, ok := st.(*sqlexec.SelectStmt)
	if !ok {
		return ExecResp{Err: "soe: partition-scoped exec supports SELECT only"}
	}
	var out ExecResp
	for _, p := range r.Parts {
		n.mu.Lock()
		_, hosted := n.hosted[r.Table][p]
		if hosted && r.Table2 != "" {
			_, hosted = n.hosted[r.Table2][p]
		}
		n.mu.Unlock()
		if !hosted {
			return ExecResp{Err: fmt.Sprintf("soe: %s does not host partition %d", n.Name, p)}
		}
		cp := *sel
		cp.Joins = append([]sqlexec.JoinClause(nil), sel.Joins...)
		scopeRef(&cp.From, r.Table, r.Table2, p)
		for j := range cp.Joins {
			scopeRef(&cp.Joins[j].Table, r.Table, r.Table2, p)
		}
		sc := sp.Child("scan", "partition="+partTableName(r.Table, p))
		res, err := n.eng.Query(sqlexec.Deparse(&cp))
		sc.Finish()
		if err != nil {
			return ExecResp{Err: err.Error()}
		}
		out.Cols = res.Cols
		out.Rows = append(out.Rows, res.Rows...)
		out.RowsScanned += res.Stats.RowsScanned
		out.Morsels += res.Stats.Morsels
	}
	return out
}

// scopeRef rewrites a table reference onto one physical partition,
// preserving how the rest of the query names its columns via an alias.
func scopeRef(ref *sqlexec.TableRef, table, table2 string, p int) {
	if ref.Name != table && (table2 == "" || ref.Name != table2) {
		return
	}
	if ref.Alias == "" {
		ref.Alias = ref.Name
	}
	ref.Name = partTableName(ref.Name, p)
}

func (n *DataNode) createTemp(r CreateTempReq) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	schema := make(columnstore.Schema, len(r.Cols))
	for i := range r.Cols {
		schema[i] = columnstore.ColumnDef{Name: r.Cols[i], Kind: value.Kind(r.Kinds[i])}
	}
	entry, ok := n.eng.Cat.Table(r.Name)
	if ok && !r.Append {
		n.eng.Cat.DropTable(r.Name)
		n.eng.Mgr.Deregister(r.Name)
		ok = false
	}
	if !ok {
		created, err := n.eng.Cat.CreateTable(r.Name, schema)
		if err != nil {
			return err
		}
		n.eng.Mgr.Register(created.Primary())
		entry = created
	}
	entry.Primary().ApplyInsert(r.Rows, n.eng.Mgr.Now())
	return nil
}

// DropTemp removes a temp relation after a distributed query completes.
func (n *DataNode) DropTemp(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.eng.Cat.DropTable(name)
	n.eng.Mgr.Deregister(name)
}
