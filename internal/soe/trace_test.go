package soe

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/value"
)

// Acceptance: a distributed query riding out one induced node failure
// must land in ONE trace — the coordinator's query root, the retried task
// attempts against the crashed node, the barrier commit through the
// broker (with its shared-log append), the replica catch-up, and the
// replica node's remote exec/scan spans — stitched across services by the
// SpanContext riding the netsim message envelopes.
func TestTraceFailoverLandsInSingleTrace(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	c.Coordinator.Retry = fastRetry
	if _, err := c.CreateTable("orders", ordersSchema(), "id", len(c.Nodes)); err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, value.Row{
			value.String(fmt.Sprintf("O%04d", i)),
			value.String([]string{"EMEA", "AMER", "APJ"}[i%3]),
			value.Float(float64(i)),
		})
	}
	// Bulk load bypasses the broker, so the coordinator's lastCommitTS
	// stays zero: the failover must learn its freshness bound through a
	// barrier commit — which also puts a genuine broker commit (and its
	// shared-log append) inside the trace under test.
	if err := c.BulkLoadLocal("orders", rows); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	c.Net.Crash(c.Nodes[0].Name)

	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatalf("query did not fail over: %v", err)
	}
	if r.Rows[0][0].AsInt() != 30 || r.Completeness != 1 {
		t.Fatalf("count=%v completeness=%v", r.Rows[0][0], r.Completeness)
	}

	var traceID uint64
	for _, root := range c.Tracer.Recent(64) {
		if root.Name == "query" {
			traceID = root.TraceID
			break
		}
	}
	if traceID == 0 {
		t.Fatal("no query trace recorded")
	}
	text := c.Tracer.RenderTrace(traceID)
	for _, want := range []string{
		"query",          // coordinator root
		"attempt=2",      // retry against the crashed node
		"barrier_commit", // failover freshness barrier
		"commit",         // the broker's side of that commit
		"log_append",     // its shared-log append
		"catch_up",       // replica asked to reach the bound
		"node=" + c.Nodes[1].Name,
		"exec",                 // remote exec continuation on a node
		"partition=orders__p0", // the crashed node's partition, scanned
		// by its replica
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace missing %q:\n%s", want, text)
		}
	}
	// Every remote continuation found its parent: a single stitched tree.
	if strings.Contains(text, "detached") {
		t.Fatalf("trace has detached continuations:\n%s", text)
	}
	if c.Obs.Snapshot().CounterTotal("soe_barrier_commits_total") == 0 {
		t.Fatal("barrier commit not counted")
	}
}

// The freshness gap the barrier commit closes: a coordinator that never
// committed anything itself must not let a failover read serve stale
// replica data when OTHER clients' writes are in the log. Before the
// barrier, catchUp no-ops on lastCommitTS==0 and the replica answers from
// whatever it last applied.
func TestTraceBarrierCommitBoundsFailoverStaleness(t *testing.T) {
	c := newTestCluster(t, 2, OLAP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 8)
	if err := c.SyncOLAP(); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	// A second coordinator with no commit history of its own — the reader.
	reader := NewCoordinator("v2dqp-reader", c.Net, c.Disc, c.Catalog, c.Broker.Name)
	reader.Instrument(c.Obs, c.Tracer)
	reader.Retry = fastRetry

	// Another client's write lands in the log, on a partition whose
	// primary is about to crash; OLAP replicas have not polled it yet, so
	// only a caught-up replica can serve it.
	victim := c.Nodes[0].Name
	tbl, _ := c.Catalog.Table("orders")
	var key string
	for i := 0; key == ""; i++ {
		k := fmt.Sprintf("X%04d", i)
		if tbl.NodeOf[tbl.PartitionFor(value.String(k))] == victim {
			key = k
		}
	}
	if _, err := c.Insert("orders", value.Row{value.String(key), value.String("EMEA"), value.Float(1)}); err != nil {
		t.Fatal(err)
	}
	c.Net.Crash(victim)
	r, _, err := reader.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatalf("failover read failed: %v", err)
	}
	if r.Rows[0][0].AsInt() != 9 {
		t.Fatalf("stale failover read: count=%v, want 9 (barrier commit should bound staleness)", r.Rows[0][0])
	}
}
