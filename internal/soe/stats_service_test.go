package soe

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sharedlog"
	"repro/internal/stats"
	"repro/internal/value"
)

func TestStatsServiceCollect(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 30)
	for i := 0; i < 4; i++ {
		if _, err := c.Query(`SELECT region, COUNT(*) FROM orders GROUP BY region`); err != nil {
			t.Fatal(err)
		}
	}

	snap := c.CollectStats()

	if v, _ := snap.Counter("soe_queries_total", "service=v2dqp"); v != 4 {
		t.Fatalf("coordinator queries = %d, want 4", v)
	}
	if v, _ := snap.Counter("soe_commits_total", "service=v2transact"); v == 0 {
		t.Fatal("no commits recorded")
	}
	if snap.CounterTotal("sharedlog_appends_total") == 0 {
		t.Fatal("no log appends recorded")
	}
	if snap.CounterTotal("netsim_messages_total") == 0 {
		t.Fatal("no network messages recorded")
	}
	// Per-node registries arrive over MsgStatsPull with node=... labels.
	nodes := map[string]bool{}
	for _, cs := range snap.CountersNamed("soe_queries_total") {
		if n, ok := stats.LabelValue(cs.Labels, "node"); ok && cs.Value > 0 {
			nodes[n] = true
		}
	}
	if len(nodes) != 2 {
		t.Fatalf("expected per-node query counters from 2 nodes, got %v", nodes)
	}
	// SQL-layer timings surface per node through the same pull.
	if h, ok := snap.HistogramNamed("soe_exec_ms"); !ok || h.Count == 0 {
		t.Fatalf("node exec histogram missing or empty: %+v", h)
	}
	if h, ok := snap.HistogramNamed("soe_query_ms"); !ok || h.Count != 4 {
		t.Fatalf("coordinator query histogram: %+v", h)
	}
}

func TestStatsServiceSkipsCrashedSource(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 10)
	c.Net.Crash("node1")
	snap := c.CollectStats()
	for _, cs := range snap.CountersNamed("soe_queries_total") {
		if n, _ := stats.LabelValue(cs.Labels, "node"); n == "node1" {
			t.Fatal("crashed node contributed metrics")
		}
	}
	// The rest of the landscape still reports.
	if snap.CounterTotal("sharedlog_appends_total") == 0 {
		t.Fatal("log metrics lost with one node down")
	}
}

func TestStatsPullUnauthorized(t *testing.T) {
	c := newTestCluster(t, 1, OLTP)
	resp, err := call[StatsResp](c.Net, "v2dqp", "v2stats", MsgStatsPull, StatsReq{Token: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "unauthorized" {
		t.Fatalf("bad token accepted: %+v", resp)
	}
}

func TestHotSpotsFromRegistry(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	if _, err := c.CreateTable("orders", ordersSchema(), "id", 2); err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 20; i++ {
		rows = append(rows, value.Row{value.String(string(rune('A' + i))), value.String("EMEA"), value.Float(1)})
	}
	if _, err := c.Insert("orders", rows...); err != nil {
		t.Fatal(err)
	}
	// Hammer one node directly so its query counter dwarfs the other's.
	hot := c.Nodes[0].Name
	for i := 0; i < 30; i++ {
		if _, err := call[ExecResp](c.Net, "v2dqp", hot, MsgExec, ExecReq{Token: c.Disc.Token(), SQL: "SELECT COUNT(*) FROM orders"}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Manager.HotSpots(1.5)
	if len(got) != 1 || got[0] != hot {
		t.Fatalf("HotSpots = %v, want [%s]", got, hot)
	}
}

func TestHotSpotsLegacyFallback(t *testing.T) {
	// A manager without a StatsService falls back to the status poll.
	net := netsim.New(netsim.Config{})
	disc := NewDiscovery("velocity")
	ccat := NewClusterCatalog()
	log := sharedlog.NewInMemory(2, 1)
	brk := NewBroker("v2transact", net, disc, log)
	mgr := NewManager("v2clustermgr", net, disc, ccat, brk, log)
	n0 := mgr.StartNode("node0", OLTP)
	mgr.StartNode("node1", OLTP)
	tbl := &DistTable{Name: "t", Schema: ordersSchema(), PartKey: "id", Partitions: 2, NodeOf: []string{"node0", "node1"}}
	if err := ccat.Define(tbl); err != nil {
		t.Fatal(err)
	}
	if err := n0.Host(tbl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := call[ExecResp](net, "x", "node0", MsgExec, ExecReq{Token: disc.Token(), SQL: "SELECT COUNT(*) FROM t"}); err != nil {
			t.Fatal(err)
		}
	}
	got := mgr.HotSpots(1.5)
	if len(got) != 1 || got[0] != "node0" {
		t.Fatalf("legacy HotSpots = %v, want [node0]", got)
	}
}

func TestOLAPBacklogGauge(t *testing.T) {
	c := newTestCluster(t, 1, OLAP)
	if _, err := c.CreateTable("orders", ordersSchema(), "id", 2); err != nil {
		t.Fatal(err)
	}
	// Separate inserts → separate commits → multiple log entries.
	for i := 0; i < 5; i++ {
		row := value.Row{value.String(string(rune('A' + i))), value.String("EMEA"), value.Float(1)}
		if _, err := c.Insert("orders", row); err != nil {
			t.Fatal(err)
		}
	}
	// Apply only part of the log: backlog must be positive.
	if _, err := c.Nodes[0].PollOnce(1); err != nil {
		t.Fatal(err)
	}
	snap := c.Nodes[0].Obs().Snapshot()
	lag := gaugeValue(t, snap, "soe_poll_backlog")
	if lag <= 0 {
		t.Fatalf("backlog = %v after partial poll", lag)
	}
	// Drain fully: backlog reaches zero.
	if err := c.SyncOLAP(); err != nil {
		t.Fatal(err)
	}
	snap = c.Nodes[0].Obs().Snapshot()
	if lag := gaugeValue(t, snap, "soe_poll_backlog"); lag != 0 {
		t.Fatalf("backlog = %v after full drain", lag)
	}
}

func gaugeValue(t *testing.T, snap stats.Snapshot, name string) float64 {
	t.Helper()
	for _, g := range snap.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %s not in snapshot", name)
	return 0
}
