package soe

import (
	"testing"

	"repro/internal/catalog"
)

// TestTieringWarmQueryParity demotes every copy of a distributed table to
// the warm tier and asserts fan-out queries still return the all-hot
// answer, with the tier recorded in the cluster catalog.
func TestTieringWarmQueryParity(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	loadOrders(t, c, 90)

	const q = `SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region`
	hot, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.DemoteTable("orders"); err != nil {
		t.Fatal(err)
	}
	dt, _ := c.Catalog.Table("orders")
	for p := 0; p < dt.Partitions; p++ {
		if tier := c.Catalog.PartitionTier("orders", p); tier != catalog.TierExtended {
			t.Fatalf("partition %d tier=%s after demote", p, tier)
		}
	}

	warm, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Rows) != len(hot.Rows) {
		t.Fatalf("warm rows %d vs hot %d", len(warm.Rows), len(hot.Rows))
	}
	for i := range hot.Rows {
		if canonKey(warm.Rows[i]) != canonKey(hot.Rows[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, warm.Rows[i], hot.Rows[i])
		}
	}

	// Every node hosting a partition must have paged data out.
	faulted := false
	for _, n := range c.Nodes {
		w, err := n.Warm()
		if err != nil {
			t.Fatal(err)
		}
		if w.Pages() == 0 {
			t.Fatalf("%s demoted nothing", n.Name)
		}
		for _, f := range w.FaultsByTable() {
			if f > 0 {
				faulted = true
			}
		}
	}
	if !faulted {
		t.Fatal("warm query faulted no pages on any node")
	}
}

// TestTieringFailoverToWarmReplica crashes a primary after demoting the
// table everywhere — replicas included — and asserts the failed-over read
// off the warm replica matches the healthy answer.
func TestTieringFailoverToWarmReplica(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 60)
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region`
	healthy, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.DemoteTable("orders"); err != nil {
		t.Fatal(err)
	}

	c.Net.Crash(c.Nodes[1].Name)
	got, err := c.Query(q)
	if err != nil {
		t.Fatalf("query did not fail over to warm replicas: %v", err)
	}
	if got.Completeness != 1 || got.Partial {
		t.Fatalf("failover result mislabelled: completeness=%v partial=%v", got.Completeness, got.Partial)
	}
	if len(got.Rows) != len(healthy.Rows) {
		t.Fatalf("rows %d vs healthy %d", len(got.Rows), len(healthy.Rows))
	}
	for i := range healthy.Rows {
		if canonKey(got.Rows[i]) != canonKey(healthy.Rows[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], healthy.Rows[i])
		}
	}
	if c.Obs.Snapshot().CounterTotal("soe_failovers_total") == 0 {
		t.Fatal("no failovers recorded")
	}
}
