package soe

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distql"
	"repro/internal/netsim"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

// Coordinator is the v2dqp service: it accepts queries, translates each
// into a DAG of tasks (scan/partial-agg tasks on query services, shuffle
// and broadcast data movement, a final merge), and drives execution.
type Coordinator struct {
	Name string
	net  *netsim.Network
	disc *Discovery
	ccat *ClusterCatalog

	broker  string
	queryID atomic.Uint64
	txnSeq  atomic.Uint64

	// lastCommitTS is the newest commit timestamp this coordinator has
	// observed; failover reads ask replicas to catch up to it (the
	// freshness bound of degraded operation).
	lastCommitTS atomic.Uint64

	// BroadcastThreshold: a join side with at most this many estimated
	// rows is broadcast instead of repartitioned.
	BroadcastThreshold int

	// Retry shapes the per-task fault-tolerance loop; zero fields take
	// DefaultRetryPolicy values.
	Retry RetryPolicy

	// PartialResults selects degraded mode: when coverage is lost and no
	// replica can serve it, return what survived (labelled with its
	// completeness fraction) instead of failing the query.
	PartialResults bool

	obs    *stats.Registry
	tracer *stats.Tracer
}

// RetryPolicy bounds the fault-tolerance loop around every remote task.
type RetryPolicy struct {
	MaxAttempts int           // attempts per target before failover
	TaskTimeout time.Duration // per-attempt deadline (<0 disables)
	BaseBackoff time.Duration // first retry delay; doubles per attempt
	MaxBackoff  time.Duration // backoff cap
}

// DefaultRetryPolicy is in force where Coordinator.Retry leaves zeros.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	TaskTimeout: 2 * time.Second,
	BaseBackoff: time.Millisecond,
	MaxBackoff:  50 * time.Millisecond,
}

// retry returns the effective policy with defaults filled in.
func (c *Coordinator) retry() RetryPolicy {
	p := c.Retry
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.TaskTimeout == 0 {
		p.TaskTimeout = DefaultRetryPolicy.TaskTimeout
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultRetryPolicy.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	return p
}

// backoff sleeps before the (attempt+1)-th try: capped exponential with
// full jitter, so synchronized retry storms against a recovering service
// spread out.
func (p RetryPolicy) backoff(attempt int) {
	d := p.BaseBackoff
	for i := 0; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// retryable classifies errors the fault-tolerance loop may act on: the
// request never reached a healthy handler (crash, partition) or was
// abandoned by its deadline. Application-level errors are never retried.
func retryable(err error) bool {
	return netsim.IsUnavailable(err) || errors.Is(err, errTaskTimeout)
}

// sqlError is an application-level failure from a node's engine: the query
// itself is wrong, so retrying or failing over cannot help.
type sqlError struct{ node, msg string }

func (e *sqlError) Error() string { return fmt.Sprintf("soe: %s: %s", e.node, e.msg) }

// Instrument attaches the landscape registry and tracer. Call during
// boot, before the coordinator serves queries; nil receivers in the
// stats package make uninstrumented coordinators free.
func (c *Coordinator) Instrument(reg *stats.Registry, tracer *stats.Tracer) {
	c.obs, c.tracer = reg, tracer
}

// NewCoordinator creates and registers a coordinator.
func NewCoordinator(name string, net *netsim.Network, disc *Discovery, ccat *ClusterCatalog, broker string) *Coordinator {
	c := &Coordinator{Name: name, net: net, disc: disc, ccat: ccat, broker: broker, BroadcastThreshold: 10_000}
	net.Register(name, func(from string, req netsim.Message) (netsim.Message, error) {
		// Clients reach the coordinator through MsgExec.
		if req.Kind != MsgExec {
			return netsim.Message{}, fmt.Errorf("soe: coordinator: unknown message %q", req.Kind)
		}
		r, err := decode[ExecReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgExec, Payload: encode(ExecResp{Err: "unauthorized"})}, nil
		}
		// Continue the client's trace (if its message carried one): the
		// whole distributed execution lands under the caller's TraceID.
		res, _, err := c.queryFrom(req.Trace, r.SQL)
		if err != nil {
			return netsim.Message{Kind: MsgExec, Payload: encode(ExecResp{Err: err.Error()})}, nil
		}
		return netsim.Message{Kind: MsgExec, Payload: encode(ExecResp{Cols: res.Cols, Rows: res.Rows, Completeness: res.Completeness})}, nil
	})
	disc.Announce("v2dqp", name)
	return c
}

// Result is a distributed query result. Completeness is the fraction of
// required partition coverage that contributed rows: 1.0 for a complete
// answer (including answers completed through replica failover), less when
// the coordinator ran in degraded mode and some coverage was unreachable.
// Lost describes the coverage that could not be served.
type Result struct {
	Cols []string
	Rows []value.Row

	Completeness float64
	Partial      bool
	Lost         []string
}

// Insert routes rows by partition key and commits them through the
// transaction broker.
func (c *Coordinator) Insert(table string, rows []value.Row) (uint64, error) {
	t0 := time.Now()
	span := c.tracer.Start("insert", "table="+table, fmt.Sprintf("rows=%d", len(rows)))
	defer span.Finish()
	defer c.obs.Histogram("soe_insert_ms", "service=v2dqp").ObserveSince(t0)

	t, ok := c.ccat.Table(table)
	if !ok {
		return 0, fmt.Errorf("soe: unknown table %q", table)
	}
	ki := t.KeyIndex()
	writes := make([]LogWrite, 0, len(rows))
	for _, r := range rows {
		if len(r) != len(t.Schema) {
			return 0, fmt.Errorf("soe: row width %d for table %s (%d cols)", len(r), table, len(t.Schema))
		}
		writes = append(writes, LogWrite{Table: table, Partition: t.PartitionFor(r[ki]), Kind: 0, Row: r})
	}
	resp, err := c.commit(span, writes)
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, fmt.Errorf("soe: commit: %s", resp.Err)
	}
	t.addRows(int64(len(rows)))
	return resp.TS, nil
}

// Delete removes rows by partition-key value.
func (c *Coordinator) Delete(table, key string) (uint64, error) {
	t, ok := c.ccat.Table(table)
	if !ok {
		return 0, fmt.Errorf("soe: unknown table %q", table)
	}
	span := c.tracer.Start("delete", "table="+table)
	defer span.Finish()
	w := LogWrite{Table: table, Partition: t.PartitionFor(value.String(key)), Kind: 1, Key: key}
	resp, err := c.commit(span, []LogWrite{w})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, fmt.Errorf("soe: commit: %s", resp.Err)
	}
	return resp.TS, nil
}

// commit sends one write set to the broker under an idempotency token,
// retrying timeouts and availability failures with backoff. The token
// makes the retry safe: a commit whose acknowledgement was lost (e.g. the
// attempt timed out after the broker appended) is recognized and answered
// from the broker's transaction cache instead of being applied twice.
func (c *Coordinator) commit(span *stats.Span, writes []LogWrite) (CommitResp, error) {
	pol := c.retry()
	req := CommitReq{
		Token:  c.disc.Token(),
		TxnID:  fmt.Sprintf("%s-txn-%d", c.Name, c.txnSeq.Add(1)),
		Writes: writes,
	}
	var lastErr error
	for a := 0; a < pol.MaxAttempts; a++ {
		if a > 0 {
			c.obs.Counter("soe_commit_retries_total", "service=v2dqp").Inc()
			pol.backoff(a - 1)
		}
		cm := span.Child("commit", fmt.Sprintf("attempt=%d", a+1))
		resp, err := callTracedTimeout[CommitResp](c.net, c.Name, c.broker, MsgCommit, req, cm.Context(), pol.TaskTimeout)
		cm.Finish()
		if err == nil {
			if resp.Err == "" {
				c.observeCommitTS(resp.TS)
			}
			return resp, nil
		}
		if !retryable(err) {
			return CommitResp{}, err
		}
		lastErr = err
	}
	return CommitResp{}, lastErr
}

// observeCommitTS advances the freshness bound failover reads must reach.
func (c *Coordinator) observeCommitTS(ts uint64) {
	for {
		old := c.lastCommitTS.Load()
		if ts <= old || c.lastCommitTS.CompareAndSwap(old, ts) {
			return
		}
	}
}

// Query plans and executes a distributed SELECT, returning the result and
// the plan that produced it.
func (c *Coordinator) Query(sql string) (*Result, *distql.Plan, error) {
	return c.queryFrom(stats.SpanContext{}, sql)
}

// queryFrom is Query continuing a trace started elsewhere (a client whose
// MsgExec carried a SpanContext); a zero parent starts a fresh trace.
func (c *Coordinator) queryFrom(parent stats.SpanContext, sql string) (*Result, *distql.Plan, error) {
	t0 := time.Now()
	span := c.tracer.StartRemote("query", parent, "sql="+sql)
	defer span.Finish()
	defer c.obs.Histogram("soe_query_ms", "service=v2dqp").ObserveSince(t0)
	c.obs.Counter("soe_queries_total", "service=v2dqp").Inc()

	pl := span.Child("plan")
	st, err := sqlexec.Parse(sql)
	if err != nil {
		pl.Finish()
		return nil, nil, err
	}
	sel, ok := st.(*sqlexec.SelectStmt)
	if !ok {
		pl.Finish()
		return nil, nil, fmt.Errorf("soe: coordinator executes SELECT only (DML goes through Insert/Delete)")
	}
	plan, err := distql.Rewrite(sel)
	pl.Finish()
	if err != nil {
		return nil, nil, err
	}
	if _, ok := c.ccat.Table(plan.LeftTable); !ok {
		return nil, nil, fmt.Errorf("soe: unknown table %q", plan.LeftTable)
	}

	if plan.RightTable == "" {
		plan.Strategy = distql.StrategyLocalParallel
		parts := c.pruneParts(sel, plan.LeftTable)
		rows, rep, err := c.fanOut(span, plan.LocalSQL, c.tasksFor(plan.LeftTable, parts), plan.LeftTable, "")
		if err != nil {
			return nil, nil, err
		}
		return c.finish(plan, rows, rep)
	}
	return c.queryJoin(sel, plan, span)
}

// pruneParts narrows the fan-out for range-partitioned tables when the
// WHERE clause bounds the partition key — distributed partition pruning.
// Returns the explicit partition list (possibly empty for contradictory
// bounds).
func (c *Coordinator) pruneParts(sel *sqlexec.SelectStmt, table string) []int {
	t, ok := c.ccat.Table(table)
	if !ok {
		return nil
	}
	lo, hi, bounded := distql.KeyBounds(sel, sel.From.Alias, t.PartKey)
	if bounded && lo > hi {
		return []int{} // contradictory bounds: empty fan-out
	}
	if !bounded {
		return allParts(t)
	}
	return t.PartitionsInRange(lo, hi)
}

func allParts(t *DistTable) []int {
	out := make([]int, t.Partitions)
	for i := range out {
		out[i] = i
	}
	return out
}

// ForceStrategy executes a join with an explicit strategy (the E8
// ablation); empty string means the optimizer chooses.
func (c *Coordinator) ForceStrategy(sql string, strategy distql.Strategy) (*Result, *distql.Plan, error) {
	st, err := sqlexec.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*sqlexec.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("soe: SELECT only")
	}
	plan, err := distql.Rewrite(sel)
	if err != nil {
		return nil, nil, err
	}
	if plan.RightTable == "" {
		return nil, nil, fmt.Errorf("soe: ForceStrategy needs a join")
	}
	plan.Strategy = strategy
	span := c.tracer.Start("query", "sql="+sql, "forced="+strategy.String())
	defer span.Finish()
	return c.executeJoin(sel, plan, span)
}

func (c *Coordinator) queryJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	lt, lok := c.ccat.Table(plan.LeftTable)
	rt, rok := c.ccat.Table(plan.RightTable)
	if !lok || !rok {
		return nil, nil, fmt.Errorf("soe: unknown join table")
	}
	switch {
	case c.ccat.CoPartitioned(plan.LeftTable, plan.RightTable, plan.LeftKey, plan.RightKey):
		plan.Strategy = distql.StrategyColocated
	case rt.rows() <= int64(c.BroadcastThreshold) || lt.rows() <= int64(c.BroadcastThreshold):
		plan.Strategy = distql.StrategyBroadcast
	default:
		plan.Strategy = distql.StrategyRepartition
	}
	return c.executeJoin(sel, plan, span)
}

func (c *Coordinator) executeJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	c.obs.Counter("soe_joins_total", "service=v2dqp", "strategy="+plan.Strategy.String()).Inc()
	switch plan.Strategy {
	case distql.StrategyColocated:
		// Scoped on both sides: a failover target must hold the same
		// partition of both tables for the bucket-local join to be correct.
		lt, _ := c.ccat.Table(plan.LeftTable)
		rows, rep, err := c.fanOut(span, plan.LocalSQL, c.tasksFor(plan.LeftTable, allParts(lt)), plan.LeftTable, plan.RightTable)
		if err != nil {
			return nil, nil, err
		}
		return c.finish(plan, rows, rep)
	case distql.StrategyBroadcast:
		return c.broadcastJoin(sel, plan, span)
	case distql.StrategyRepartition:
		return c.repartitionJoin(sel, plan, span)
	default:
		return nil, nil, fmt.Errorf("soe: strategy %v not executable for joins", plan.Strategy)
	}
}

// broadcastJoin replicates the smaller side to every node of the bigger
// side as a temp table.
func (c *Coordinator) broadcastJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	lt, _ := c.ccat.Table(plan.LeftTable)
	rt, _ := c.ccat.Table(plan.RightTable)
	small, big := rt, lt
	smallIsRight := true
	if lt.rows() < rt.rows() {
		small, big = lt, rt
		smallIsRight = false
	}
	plan.BroadcastTable = small.Name

	// Pull the small side (partition-scoped, so it fails over too).
	smallRows, smallRep, err := c.fanOut(span, "SELECT * FROM "+small.Name, c.tasksFor(small.Name, allParts(small)), small.Name, "")
	if err != nil {
		return nil, nil, err
	}
	var flat []value.Row
	for _, b := range smallRows {
		flat = append(flat, b...)
	}

	qid := c.queryID.Add(1)
	tmp := fmt.Sprintf("tmp_bc_%d", qid)
	// Install the broadcast temp on every node that might execute a big-side
	// task: the primary hosts plus registered replicas (failover targets).
	// Unreachable targets are skipped — their tasks fail over or degrade.
	bigNodes := c.ccat.NodesOf(big.Name)
	targets := append([]string(nil), bigNodes...)
	for p := 0; p < big.Partitions; p++ {
		targets = unionNodes(targets, c.ccat.Replicas(big.Name, p))
	}
	req := CreateTempReq{Token: c.disc.Token(), Name: tmp, Cols: small.Schema.Names(), Kinds: kindsOf(small), Rows: flat}
	for _, n := range targets {
		resp, err := call[ExecResp](c.net, c.Name, n, MsgCreateTemp, req)
		if err != nil {
			if netsim.IsUnavailable(err) {
				continue
			}
			return nil, nil, err
		}
		if resp.Err != "" {
			return nil, nil, fmt.Errorf("soe: broadcast: %s", resp.Err)
		}
	}
	defer c.dropTempOn(targets, tmp)

	// Rewrite the AST with the temp name and re-derive local SQL.
	sub := cloneSelect(sel)
	if smallIsRight {
		sub.Joins[0].Table.Name = tmp
	} else {
		sub.From.Name = tmp
	}
	subPlan, err := distql.Rewrite(sub)
	if err != nil {
		return nil, nil, err
	}
	plan.LocalSQL = subPlan.LocalSQL

	rows, bigRep, err := c.fanOut(span, plan.LocalSQL, c.tasksFor(big.Name, allParts(big)), big.Name, "")
	if err != nil {
		return nil, nil, err
	}
	return c.finish(plan, rows, smallRep, bigRep)
}

// repartitionJoin shuffles both sides by join key across the participating
// nodes, then joins bucket-locally. Data moves through the coordinator (a
// star shuffle), which charges the same volume the direct node-to-node
// shuffle would — a conservative model.
func (c *Coordinator) repartitionJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	lt, _ := c.ccat.Table(plan.LeftTable)
	rt, _ := c.ccat.Table(plan.RightTable)
	// Shuffle buckets land only on reachable nodes: a crashed node would
	// otherwise sink its bucket and fail the join outright.
	nodes := c.aliveNodes(unionNodes(c.ccat.NodesOf(lt.Name), c.ccat.NodesOf(rt.Name)))
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("soe: repartition join: no reachable nodes")
	}
	qid := c.queryID.Add(1)
	tmpL := fmt.Sprintf("tmp_rl_%d", qid)
	tmpR := fmt.Sprintf("tmp_rr_%d", qid)

	repL, err := c.shuffle(span, lt, plan.LeftKey, nodes, tmpL)
	if err != nil {
		return nil, nil, err
	}
	repR, err := c.shuffle(span, rt, plan.RightKey, nodes, tmpR)
	if err != nil {
		return nil, nil, err
	}
	defer c.dropTempOn(nodes, tmpL)
	defer c.dropTempOn(nodes, tmpR)

	sub := cloneSelect(sel)
	sub.From.Name = tmpL
	sub.Joins[0].Table.Name = tmpR
	subPlan, err := distql.Rewrite(sub)
	if err != nil {
		return nil, nil, err
	}
	plan.LocalSQL = subPlan.LocalSQL

	rows, rep, err := c.fanOut(span, plan.LocalSQL, unscopedTasks(nodes), "", "")
	if err != nil {
		return nil, nil, err
	}
	return c.finish(plan, rows, repL, repR, rep)
}

// shuffle hashes a table's rows by the join key across the target nodes
// into per-node temp tables. The pull is partition-scoped, so a crashed
// source node fails over to replicas like any other read.
func (c *Coordinator) shuffle(span *stats.Span, t *DistTable, key string, nodes []string, tmp string) (*fanReport, error) {
	sh := span.Child("shuffle", "table="+t.Name)
	defer sh.Finish()
	ki := t.Schema.ColIndex(key)
	if ki < 0 {
		return nil, fmt.Errorf("soe: shuffle key %q not in %s", key, t.Name)
	}
	batches, rep, err := c.fanOut(sh, "SELECT * FROM "+t.Name, c.tasksFor(t.Name, allParts(t)), t.Name, "")
	if err != nil {
		return nil, err
	}
	buckets := make([][]value.Row, len(nodes))
	for _, batch := range batches {
		for _, row := range batch {
			b := int(row[ki].Hash() % uint64(len(nodes)))
			buckets[b] = append(buckets[b], row)
		}
	}
	kinds := kindsOf(t)
	for i, n := range nodes {
		req := CreateTempReq{Token: c.disc.Token(), Name: tmp, Cols: t.Schema.Names(), Kinds: kinds, Rows: buckets[i]}
		resp, err := call[ExecResp](c.net, c.Name, n, MsgCreateTemp, req)
		if err != nil {
			return nil, err
		}
		if resp.Err != "" {
			return nil, fmt.Errorf("soe: shuffle: %s", resp.Err)
		}
	}
	return rep, nil
}

// fanTask is one unit of fan-out work: a target node and, for
// partition-scoped tasks, the exact partitions it must scan there. Scoped
// tasks can fail over partition-by-partition to replica nodes; unscoped
// tasks (temp relations local to a node) cannot.
type fanTask struct {
	node  string
	parts []int
}

// tasksFor groups a table's partitions by hosting node into scoped tasks.
func (c *Coordinator) tasksFor(table string, parts []int) []fanTask {
	t, ok := c.ccat.Table(table)
	if !ok {
		return nil
	}
	byNode := map[string][]int{}
	for _, p := range parts {
		n := t.NodeOf[p]
		byNode[n] = append(byNode[n], p)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	out := make([]fanTask, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, fanTask{node: n, parts: byNode[n]})
	}
	return out
}

func unscopedTasks(nodes []string) []fanTask {
	out := make([]fanTask, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, fanTask{node: n})
	}
	return out
}

// fanReport accounts one fan-out's coverage for partial-result labelling:
// covered/total is the fraction of required work that contributed rows.
type fanReport struct {
	covered, total int
	lost           []string
}

func (r *fanReport) fraction() float64 {
	if r == nil || r.total == 0 {
		return 1
	}
	return float64(r.covered) / float64(r.total)
}

// fanOut runs SQL on every task in parallel and returns the row batches
// plus a coverage report. An empty task list is a valid (pruned-to-nothing)
// fan-out. Each attempt gets a "task" child span under the caller's span —
// the DAG of Figure 3 made visible in the trace tree.
//
// Fault tolerance, in order: each target is retried per RetryPolicy
// (timeouts, crashes, partitions — never SQL errors); a scoped task that
// still fails is re-grouped partition-by-partition onto live replica nodes
// from the catalog; coverage that cannot be served anywhere either fails
// the query (default) or, with PartialResults, is dropped and reported in
// the completeness fraction.
func (c *Coordinator) fanOut(span *stats.Span, sql string, tasks []fanTask, table, table2 string) ([][]value.Row, *fanReport, error) {
	t0 := time.Now()
	out := make([][]value.Row, len(tasks))
	reps := make([]fanReport, len(tasks))
	fatals := make([]error, len(tasks))
	var scanned, morsels atomic.Int64
	var wg sync.WaitGroup
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk fanTask) {
			defer wg.Done()
			rep := &reps[i]
			rep.total = 1
			if tk.parts != nil {
				rep.total = len(tk.parts)
			}
			resp, err := c.execTarget(span, sql, tk.node, table, table2, tk.parts)
			if err == nil {
				out[i] = resp.Rows
				scanned.Add(int64(resp.RowsScanned))
				morsels.Add(int64(resp.Morsels))
				rep.covered = rep.total
				return
			}
			var se *sqlError
			if errors.As(err, &se) {
				fatals[i] = err
				return
			}
			if tk.parts == nil {
				rep.lost = []string{fmt.Sprintf("%s (%v)", tk.node, err)}
				return
			}
			rows, covered, lost := c.failover(span, sql, table, table2, tk.parts, tk.node, err, &scanned, &morsels)
			out[i] = rows
			rep.covered = covered
			rep.lost = lost
		}(i, tk)
	}
	wg.Wait()

	rep := &fanReport{}
	for i := range reps {
		rep.covered += reps[i].covered
		rep.total += reps[i].total
		rep.lost = append(rep.lost, reps[i].lost...)
	}
	var err error
	for _, e := range fatals {
		if e != nil {
			err = e
			break
		}
	}
	if err == nil && rep.covered < rep.total && !c.PartialResults {
		err = fmt.Errorf("soe: fan-out lost coverage: %v", rep.lost)
	}
	// Outcome-labelled observability: failed fan-outs must not pollute the
	// success latency histogram or the scan-cost counters.
	outcome := "result=ok"
	if err != nil {
		outcome = "result=error"
	}
	c.obs.Histogram("soe_fanout_ms", "service=v2dqp", outcome).ObserveSince(t0)
	c.obs.Counter("soe_fanout_rows_scanned_total", "service=v2dqp", outcome).Add(scanned.Load())
	c.obs.Counter("soe_fanout_morsels_total", "service=v2dqp", outcome).Add(morsels.Load())
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// execTarget is the per-target retry loop: bounded attempts with
// exponential backoff and jitter, a deadline per attempt. SQL-level
// failures surface immediately as *sqlError (retrying cannot help).
func (c *Coordinator) execTarget(span *stats.Span, sql, node, table, table2 string, parts []int) (ExecResp, error) {
	pol := c.retry()
	req := ExecReq{Token: c.disc.Token(), SQL: sql, Parts: parts}
	if parts != nil {
		req.Table, req.Table2 = table, table2
	}
	var lastErr error
	for a := 0; a < pol.MaxAttempts; a++ {
		if a > 0 {
			c.obs.Counter("soe_task_retries_total", "service=v2dqp").Inc()
			pol.backoff(a - 1)
		}
		task := span.Child("task", "node="+node, fmt.Sprintf("attempt=%d", a+1))
		resp, err := callTracedTimeout[ExecResp](c.net, c.Name, node, MsgExec, req, task.Context(), pol.TaskTimeout)
		task.Finish()
		if err == nil {
			if resp.Err != "" {
				return ExecResp{}, &sqlError{node: node, msg: resp.Err}
			}
			return resp, nil
		}
		if !retryable(err) {
			return ExecResp{}, err
		}
		lastErr = err
	}
	return ExecResp{}, lastErr
}

// failover re-groups a failed task's partitions onto live replica nodes.
// For co-located joins a target must replicate the partition of both
// tables. Replicas are asked to catch up to the coordinator's freshness
// bound before serving. Partitions with no live replica — and SQL errors
// on replicas, e.g. a temp relation a crashed install never reached — are
// reported as lost, not fatal: degraded coverage is the caller's decision.
func (c *Coordinator) failover(span *stats.Span, sql, table, table2 string, parts []int, failed string, cause error, scanned, morsels *atomic.Int64) (rows []value.Row, covered int, lost []string) {
	group := map[string][]int{}
	for _, p := range parts {
		cands := c.ccat.Replicas(table, p)
		if table2 != "" {
			cands = intersect(cands, c.ccat.Replicas(table2, p))
		}
		target := ""
		for _, cand := range cands {
			if c.net.Alive(cand) {
				target = cand
				break
			}
		}
		if target == "" {
			lost = append(lost, fmt.Sprintf("%s p%d on %s (%v; no live replica)", table, p, failed, cause))
			continue
		}
		group[target] = append(group[target], p)
	}
	// A coordinator that has never committed holds no freshness bound to
	// hand a replica — lastCommitTS only tracks this coordinator's own
	// writes — so catchUp would silently no-op and the failover read could
	// serve arbitrarily stale data. An empty idempotent commit serializes
	// behind every completed transaction in the shared log and returns the
	// broker's authoritative commit timestamp: the barrier replicas must
	// catch up to. Best-effort — with the broker unreachable the read
	// proceeds and staleness is bounded only by the completeness label.
	if len(group) > 0 && c.lastCommitTS.Load() == 0 {
		bc := span.Child("barrier_commit")
		if resp, err := c.commit(bc, nil); err == nil && resp.Err == "" {
			c.obs.Counter("soe_barrier_commits_total", "service=v2dqp").Inc()
		}
		bc.Finish()
	}
	targets := make([]string, 0, len(group))
	for n := range group {
		targets = append(targets, n)
	}
	sort.Strings(targets)
	for _, rn := range targets {
		ps := group[rn]
		c.catchUp(span, rn, table, ps)
		resp, err := c.execTarget(span, sql, rn, table, table2, ps)
		if err != nil {
			for _, p := range ps {
				lost = append(lost, fmt.Sprintf("%s p%d replica %s (%v)", table, p, rn, err))
			}
			continue
		}
		rows = append(rows, resp.Rows...)
		scanned.Add(int64(resp.RowsScanned))
		morsels.Add(int64(resp.Morsels))
		covered += len(ps)
		c.obs.Counter("soe_failovers_total", "service=v2dqp").Inc()
	}
	return rows, covered, lost
}

// catchUp asks a replica to reach this coordinator's last observed commit
// timestamp before serving a failed-over read — the freshness bound of
// degraded OLAP operation. Best-effort: if the replica cannot catch up
// (broker unreachable, peers gone) the read proceeds on what it has; the
// completeness label, not silent staleness, is the contract under failure.
func (c *Coordinator) catchUp(span *stats.Span, node, table string, parts []int) {
	minTS := c.lastCommitTS.Load()
	if minTS == 0 {
		return
	}
	peers := map[int]string{}
	if t, ok := c.ccat.Table(table); ok {
		for _, p := range parts {
			if prim := t.NodeOf[p]; c.net.Alive(prim) {
				peers[p] = prim
			}
		}
	}
	cu := span.Child("catch_up", "node="+node)
	defer cu.Finish()
	callTracedTimeout[CatchUpResp](c.net, c.Name, node, MsgCatchUp,
		CatchUpReq{Token: c.disc.Token(), Table: table, MinTS: minTS, Peers: peers}, cu.Context(), c.retry().TaskTimeout)
}

// aliveNodes filters a node list down to reachable members.
func (c *Coordinator) aliveNodes(nodes []string) []string {
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if c.net.Alive(n) {
			out = append(out, n)
		}
	}
	return out
}

func intersect(a, b []string) []string {
	in := map[string]bool{}
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if in[s] {
			out = append(out, s)
		}
	}
	return out
}

// finish merges partials, applies ORDER BY / LIMIT, and folds the
// fan-out coverage reports into the result's completeness label (the
// product of per-stage fractions: losing coverage in any stage of a
// multi-stage plan makes the whole answer partial).
func (c *Coordinator) finish(plan *distql.Plan, batches [][]value.Row, reports ...*fanReport) (*Result, *distql.Plan, error) {
	rows := plan.MergePartials(batches)
	if len(plan.OrderBy) > 0 {
		idx := map[string]int{}
		for i, n := range plan.OutCols {
			idx[n] = i
		}
		keys := plan.OrderBy
		sort.SliceStable(rows, func(a, b int) bool {
			for _, k := range keys {
				cr, ok := k.Expr.(*sqlexec.ColRef)
				if !ok {
					continue
				}
				ci, ok := idx[cr.Name]
				if !ok {
					continue
				}
				cmp := value.Compare(rows[a][ci], rows[b][ci])
				if k.Desc {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
	}
	if plan.Offset > 0 {
		if plan.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[plan.Offset:]
		}
	}
	if plan.Limit >= 0 && plan.Limit < len(rows) {
		rows = rows[:plan.Limit]
	}
	res := &Result{Cols: plan.OutCols, Rows: rows, Completeness: 1}
	for _, r := range reports {
		if r == nil {
			continue
		}
		res.Completeness *= r.fraction()
		res.Lost = append(res.Lost, r.lost...)
	}
	if res.Completeness < 1 {
		res.Partial = true
		c.obs.Counter("soe_degraded_queries_total", "service=v2dqp").Inc()
	}
	return res, plan, nil
}

func (c *Coordinator) dropTempOn(nodes []string, tmp string) {
	for _, n := range nodes {
		call[ExecResp](c.net, c.Name, n, MsgExec, ExecReq{Token: c.disc.Token(), SQL: "DROP TABLE IF EXISTS " + tmp})
	}
}

func kindsOf(t *DistTable) []uint8 {
	out := make([]uint8, len(t.Schema))
	for i, cdef := range t.Schema {
		out[i] = uint8(cdef.Kind)
	}
	return out
}

func unionNodes(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func cloneSelect(s *sqlexec.SelectStmt) *sqlexec.SelectStmt {
	cp := *s
	cp.Joins = append([]sqlexec.JoinClause(nil), s.Joins...)
	return &cp
}
