package soe

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distql"
	"repro/internal/netsim"
	"repro/internal/sqlexec"
	"repro/internal/stats"
	"repro/internal/value"
)

// Coordinator is the v2dqp service: it accepts queries, translates each
// into a DAG of tasks (scan/partial-agg tasks on query services, shuffle
// and broadcast data movement, a final merge), and drives execution.
type Coordinator struct {
	Name string
	net  *netsim.Network
	disc *Discovery
	ccat *ClusterCatalog

	broker  string
	queryID atomic.Uint64

	// BroadcastThreshold: a join side with at most this many estimated
	// rows is broadcast instead of repartitioned.
	BroadcastThreshold int

	obs    *stats.Registry
	tracer *stats.Tracer
}

// Instrument attaches the landscape registry and tracer. Call during
// boot, before the coordinator serves queries; nil receivers in the
// stats package make uninstrumented coordinators free.
func (c *Coordinator) Instrument(reg *stats.Registry, tracer *stats.Tracer) {
	c.obs, c.tracer = reg, tracer
}

// NewCoordinator creates and registers a coordinator.
func NewCoordinator(name string, net *netsim.Network, disc *Discovery, ccat *ClusterCatalog, broker string) *Coordinator {
	c := &Coordinator{Name: name, net: net, disc: disc, ccat: ccat, broker: broker, BroadcastThreshold: 10_000}
	net.Register(name, func(from string, req netsim.Message) (netsim.Message, error) {
		// Clients reach the coordinator through MsgExec.
		if req.Kind != MsgExec {
			return netsim.Message{}, fmt.Errorf("soe: coordinator: unknown message %q", req.Kind)
		}
		r, err := decode[ExecReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgExec, Payload: encode(ExecResp{Err: "unauthorized"})}, nil
		}
		res, _, err := c.Query(r.SQL)
		if err != nil {
			return netsim.Message{Kind: MsgExec, Payload: encode(ExecResp{Err: err.Error()})}, nil
		}
		return netsim.Message{Kind: MsgExec, Payload: encode(ExecResp{Cols: res.Cols, Rows: res.Rows})}, nil
	})
	disc.Announce("v2dqp", name)
	return c
}

// Result is a distributed query result.
type Result struct {
	Cols []string
	Rows []value.Row
}

// Insert routes rows by partition key and commits them through the
// transaction broker.
func (c *Coordinator) Insert(table string, rows []value.Row) (uint64, error) {
	t0 := time.Now()
	span := c.tracer.Start("insert", "table="+table, fmt.Sprintf("rows=%d", len(rows)))
	defer span.Finish()
	defer c.obs.Histogram("soe_insert_ms", "service=v2dqp").ObserveSince(t0)

	t, ok := c.ccat.Table(table)
	if !ok {
		return 0, fmt.Errorf("soe: unknown table %q", table)
	}
	ki := t.KeyIndex()
	writes := make([]LogWrite, 0, len(rows))
	for _, r := range rows {
		if len(r) != len(t.Schema) {
			return 0, fmt.Errorf("soe: row width %d for table %s (%d cols)", len(r), table, len(t.Schema))
		}
		writes = append(writes, LogWrite{Table: table, Partition: t.PartitionFor(r[ki]), Kind: 0, Row: r})
	}
	commit := span.Child("commit")
	resp, err := call[CommitResp](c.net, c.Name, c.broker, MsgCommit, CommitReq{Token: c.disc.Token(), Writes: writes})
	commit.Finish()
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, fmt.Errorf("soe: commit: %s", resp.Err)
	}
	t.addRows(int64(len(rows)))
	return resp.TS, nil
}

// Delete removes rows by partition-key value.
func (c *Coordinator) Delete(table, key string) (uint64, error) {
	t, ok := c.ccat.Table(table)
	if !ok {
		return 0, fmt.Errorf("soe: unknown table %q", table)
	}
	w := LogWrite{Table: table, Partition: t.PartitionFor(value.String(key)), Kind: 1, Key: key}
	resp, err := call[CommitResp](c.net, c.Name, c.broker, MsgCommit, CommitReq{Token: c.disc.Token(), Writes: []LogWrite{w}})
	if err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, fmt.Errorf("soe: commit: %s", resp.Err)
	}
	return resp.TS, nil
}

// Query plans and executes a distributed SELECT, returning the result and
// the plan that produced it.
func (c *Coordinator) Query(sql string) (*Result, *distql.Plan, error) {
	t0 := time.Now()
	span := c.tracer.Start("query", "sql="+sql)
	defer span.Finish()
	defer c.obs.Histogram("soe_query_ms", "service=v2dqp").ObserveSince(t0)
	c.obs.Counter("soe_queries_total", "service=v2dqp").Inc()

	pl := span.Child("plan")
	st, err := sqlexec.Parse(sql)
	if err != nil {
		pl.Finish()
		return nil, nil, err
	}
	sel, ok := st.(*sqlexec.SelectStmt)
	if !ok {
		pl.Finish()
		return nil, nil, fmt.Errorf("soe: coordinator executes SELECT only (DML goes through Insert/Delete)")
	}
	plan, err := distql.Rewrite(sel)
	pl.Finish()
	if err != nil {
		return nil, nil, err
	}
	if _, ok := c.ccat.Table(plan.LeftTable); !ok {
		return nil, nil, fmt.Errorf("soe: unknown table %q", plan.LeftTable)
	}

	if plan.RightTable == "" {
		plan.Strategy = distql.StrategyLocalParallel
		nodes := c.pruneNodes(sel, plan.LeftTable)
		rows, err := c.fanOut(span, nodes, plan.LocalSQL)
		if err != nil {
			return nil, nil, err
		}
		return c.finish(plan, rows)
	}
	return c.queryJoin(sel, plan, span)
}

// pruneNodes narrows the fan-out for range-partitioned tables when the
// WHERE clause bounds the partition key — distributed partition pruning.
func (c *Coordinator) pruneNodes(sel *sqlexec.SelectStmt, table string) []string {
	all := c.ccat.NodesOf(table)
	t, ok := c.ccat.Table(table)
	if !ok {
		return all
	}
	lo, hi, bounded := distql.KeyBounds(sel, sel.From.Alias, t.PartKey)
	if !bounded || lo > hi {
		if bounded && lo > hi {
			return nil // contradictory bounds: empty fan-out
		}
		return all
	}
	parts := t.PartitionsInRange(lo, hi)
	seen := map[string]bool{}
	var out []string
	for _, p := range parts {
		n := t.NodeOf[p]
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// ForceStrategy executes a join with an explicit strategy (the E8
// ablation); empty string means the optimizer chooses.
func (c *Coordinator) ForceStrategy(sql string, strategy distql.Strategy) (*Result, *distql.Plan, error) {
	st, err := sqlexec.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*sqlexec.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("soe: SELECT only")
	}
	plan, err := distql.Rewrite(sel)
	if err != nil {
		return nil, nil, err
	}
	if plan.RightTable == "" {
		return nil, nil, fmt.Errorf("soe: ForceStrategy needs a join")
	}
	plan.Strategy = strategy
	span := c.tracer.Start("query", "sql="+sql, "forced="+strategy.String())
	defer span.Finish()
	return c.executeJoin(sel, plan, span)
}

func (c *Coordinator) queryJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	lt, lok := c.ccat.Table(plan.LeftTable)
	rt, rok := c.ccat.Table(plan.RightTable)
	if !lok || !rok {
		return nil, nil, fmt.Errorf("soe: unknown join table")
	}
	switch {
	case c.ccat.CoPartitioned(plan.LeftTable, plan.RightTable, plan.LeftKey, plan.RightKey):
		plan.Strategy = distql.StrategyColocated
	case rt.rows() <= int64(c.BroadcastThreshold) || lt.rows() <= int64(c.BroadcastThreshold):
		plan.Strategy = distql.StrategyBroadcast
	default:
		plan.Strategy = distql.StrategyRepartition
	}
	return c.executeJoin(sel, plan, span)
}

func (c *Coordinator) executeJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	c.obs.Counter("soe_joins_total", "service=v2dqp", "strategy="+plan.Strategy.String()).Inc()
	switch plan.Strategy {
	case distql.StrategyColocated:
		rows, err := c.fanOut(span, c.ccat.NodesOf(plan.LeftTable), plan.LocalSQL)
		if err != nil {
			return nil, nil, err
		}
		return c.finish(plan, rows)
	case distql.StrategyBroadcast:
		return c.broadcastJoin(sel, plan, span)
	case distql.StrategyRepartition:
		return c.repartitionJoin(sel, plan, span)
	default:
		return nil, nil, fmt.Errorf("soe: strategy %v not executable for joins", plan.Strategy)
	}
}

// broadcastJoin replicates the smaller side to every node of the bigger
// side as a temp table.
func (c *Coordinator) broadcastJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	lt, _ := c.ccat.Table(plan.LeftTable)
	rt, _ := c.ccat.Table(plan.RightTable)
	small, big := rt, lt
	smallIsRight := true
	if lt.rows() < rt.rows() {
		small, big = lt, rt
		smallIsRight = false
	}
	plan.BroadcastTable = small.Name

	// Pull the small side.
	smallRows, err := c.fanOut(span, c.ccat.NodesOf(small.Name), "SELECT * FROM "+small.Name)
	if err != nil {
		return nil, nil, err
	}
	var flat []value.Row
	for _, b := range smallRows {
		flat = append(flat, b...)
	}

	qid := c.queryID.Add(1)
	tmp := fmt.Sprintf("tmp_bc_%d", qid)
	bigNodes := c.ccat.NodesOf(big.Name)
	req := CreateTempReq{Token: c.disc.Token(), Name: tmp, Cols: small.Schema.Names(), Kinds: kindsOf(small), Rows: flat}
	for _, n := range bigNodes {
		if resp, err := call[ExecResp](c.net, c.Name, n, MsgCreateTemp, req); err != nil {
			return nil, nil, err
		} else if resp.Err != "" {
			return nil, nil, fmt.Errorf("soe: broadcast: %s", resp.Err)
		}
	}
	defer c.dropTempOn(bigNodes, tmp)

	// Rewrite the AST with the temp name and re-derive local SQL.
	sub := cloneSelect(sel)
	if smallIsRight {
		sub.Joins[0].Table.Name = tmp
	} else {
		sub.From.Name = tmp
	}
	subPlan, err := distql.Rewrite(sub)
	if err != nil {
		return nil, nil, err
	}
	plan.LocalSQL = subPlan.LocalSQL

	rows, err := c.fanOut(span, bigNodes, plan.LocalSQL)
	if err != nil {
		return nil, nil, err
	}
	return c.finish(plan, rows)
}

// repartitionJoin shuffles both sides by join key across the participating
// nodes, then joins bucket-locally. Data moves through the coordinator (a
// star shuffle), which charges the same volume the direct node-to-node
// shuffle would — a conservative model.
func (c *Coordinator) repartitionJoin(sel *sqlexec.SelectStmt, plan *distql.Plan, span *stats.Span) (*Result, *distql.Plan, error) {
	lt, _ := c.ccat.Table(plan.LeftTable)
	rt, _ := c.ccat.Table(plan.RightTable)
	nodes := unionNodes(c.ccat.NodesOf(lt.Name), c.ccat.NodesOf(rt.Name))
	qid := c.queryID.Add(1)
	tmpL := fmt.Sprintf("tmp_rl_%d", qid)
	tmpR := fmt.Sprintf("tmp_rr_%d", qid)

	if err := c.shuffle(span, lt, plan.LeftKey, nodes, tmpL); err != nil {
		return nil, nil, err
	}
	if err := c.shuffle(span, rt, plan.RightKey, nodes, tmpR); err != nil {
		return nil, nil, err
	}
	defer c.dropTempOn(nodes, tmpL)
	defer c.dropTempOn(nodes, tmpR)

	sub := cloneSelect(sel)
	sub.From.Name = tmpL
	sub.Joins[0].Table.Name = tmpR
	subPlan, err := distql.Rewrite(sub)
	if err != nil {
		return nil, nil, err
	}
	plan.LocalSQL = subPlan.LocalSQL

	rows, err := c.fanOut(span, nodes, plan.LocalSQL)
	if err != nil {
		return nil, nil, err
	}
	return c.finish(plan, rows)
}

// shuffle hashes a table's rows by the join key across the target nodes
// into per-node temp tables.
func (c *Coordinator) shuffle(span *stats.Span, t *DistTable, key string, nodes []string, tmp string) error {
	sh := span.Child("shuffle", "table="+t.Name)
	defer sh.Finish()
	ki := t.Schema.ColIndex(key)
	if ki < 0 {
		return fmt.Errorf("soe: shuffle key %q not in %s", key, t.Name)
	}
	batches, err := c.fanOut(sh, c.ccat.NodesOf(t.Name), "SELECT * FROM "+t.Name)
	if err != nil {
		return err
	}
	buckets := make([][]value.Row, len(nodes))
	for _, batch := range batches {
		for _, row := range batch {
			b := int(row[ki].Hash() % uint64(len(nodes)))
			buckets[b] = append(buckets[b], row)
		}
	}
	kinds := kindsOf(t)
	for i, n := range nodes {
		req := CreateTempReq{Token: c.disc.Token(), Name: tmp, Cols: t.Schema.Names(), Kinds: kinds, Rows: buckets[i]}
		resp, err := call[ExecResp](c.net, c.Name, n, MsgCreateTemp, req)
		if err != nil {
			return err
		}
		if resp.Err != "" {
			return fmt.Errorf("soe: shuffle: %s", resp.Err)
		}
	}
	return nil
}

// fanOut runs SQL on every node in parallel and returns the per-node row
// batches. An empty node list is a valid (pruned-to-nothing) fan-out.
// Each node gets a "task" child span under the caller's span — the DAG of
// Figure 3 made visible in the trace tree.
func (c *Coordinator) fanOut(span *stats.Span, nodes []string, sql string) ([][]value.Row, error) {
	t0 := time.Now()
	out := make([][]value.Row, len(nodes))
	errs := make([]error, len(nodes))
	var scanned, morsels atomic.Int64
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			task := span.Child("task", "node="+n)
			defer task.Finish()
			resp, err := call[ExecResp](c.net, c.Name, n, MsgExec, ExecReq{Token: c.disc.Token(), SQL: sql})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Err != "" {
				errs[i] = fmt.Errorf("soe: %s: %s", n, resp.Err)
				return
			}
			scanned.Add(int64(resp.RowsScanned))
			morsels.Add(int64(resp.Morsels))
			out[i] = resp.Rows
		}(i, n)
	}
	wg.Wait()
	c.obs.Histogram("soe_fanout_ms", "service=v2dqp").ObserveSince(t0)
	// Cluster-wide cost of this fan-out: rows the member scans examined
	// and morsels their vectorized executors dispatched.
	c.obs.Counter("soe_fanout_rows_scanned_total", "service=v2dqp").Add(scanned.Load())
	c.obs.Counter("soe_fanout_morsels_total", "service=v2dqp").Add(morsels.Load())
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// finish merges partials and applies ORDER BY / LIMIT.
func (c *Coordinator) finish(plan *distql.Plan, batches [][]value.Row) (*Result, *distql.Plan, error) {
	rows := plan.MergePartials(batches)
	if len(plan.OrderBy) > 0 {
		idx := map[string]int{}
		for i, n := range plan.OutCols {
			idx[n] = i
		}
		keys := plan.OrderBy
		sort.SliceStable(rows, func(a, b int) bool {
			for _, k := range keys {
				cr, ok := k.Expr.(*sqlexec.ColRef)
				if !ok {
					continue
				}
				ci, ok := idx[cr.Name]
				if !ok {
					continue
				}
				cmp := value.Compare(rows[a][ci], rows[b][ci])
				if k.Desc {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
	}
	if plan.Offset > 0 {
		if plan.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[plan.Offset:]
		}
	}
	if plan.Limit >= 0 && plan.Limit < len(rows) {
		rows = rows[:plan.Limit]
	}
	return &Result{Cols: plan.OutCols, Rows: rows}, plan, nil
}

func (c *Coordinator) dropTempOn(nodes []string, tmp string) {
	for _, n := range nodes {
		call[ExecResp](c.net, c.Name, n, MsgExec, ExecReq{Token: c.disc.Token(), SQL: "DROP TABLE IF EXISTS " + tmp})
	}
}

func kindsOf(t *DistTable) []uint8 {
	out := make([]uint8, len(t.Schema))
	for i, cdef := range t.Schema {
		out[i] = uint8(cdef.Kind)
	}
	return out
}

func unionNodes(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func cloneSelect(s *sqlexec.SelectStmt) *sqlexec.SelectStmt {
	cp := *s
	cp.Joins = append([]sqlexec.JoinClause(nil), s.Joins...)
	return &cp
}
