package soe

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/sharedlog"
	"repro/internal/stats"
)

// Broker is the v2transact service: it "executes, serializes, and
// persists transactions to a distributed shared log". Commit requests get
// a global timestamp, land in the log (totally ordered), and are pushed
// synchronously to OLTP nodes; OLAP nodes pull through MsgPoll. This
// decouples the transaction mechanism from query processing (§IV-B).
type Broker struct {
	Name string
	net  *netsim.Network
	disc *Discovery
	log  *sharedlog.Log

	clock atomic.Uint64

	mu        sync.Mutex
	oltpNodes []string

	commits atomic.Int64

	// Idempotency cache: completed transactions by client token, so a
	// retried commit (timeout after the append landed) is answered from
	// here instead of being applied twice. pending serializes concurrent
	// retries of the same in-flight transaction.
	cmu     sync.Mutex
	done    map[string]CommitResp
	order   []string
	pending map[string]chan struct{}

	obs    *stats.Registry
	tracer *stats.Tracer
}

// maxTxnCache bounds the idempotency cache (FIFO eviction). A client
// retries within its backoff window, so only recent transactions matter.
const maxTxnCache = 4096

// NewBroker creates and registers the broker on the network.
func NewBroker(name string, net *netsim.Network, disc *Discovery, log *sharedlog.Log) *Broker {
	b := &Broker{
		Name: name, net: net, disc: disc, log: log,
		done: map[string]CommitResp{}, pending: map[string]chan struct{}{},
	}
	b.clock.Store(1)
	net.Register(name, b.handle)
	disc.Announce("v2transact", name)
	return b
}

// Instrument attaches the landscape registry and tracer; nil disables.
func (b *Broker) Instrument(reg *stats.Registry, tracer *stats.Tracer) {
	b.mu.Lock()
	b.obs, b.tracer = reg, tracer
	b.mu.Unlock()
}

// AddOLTPNode subscribes a node to synchronous apply.
func (b *Broker) AddOLTPNode(node string) {
	b.mu.Lock()
	b.oltpNodes = append(b.oltpNodes, node)
	b.mu.Unlock()
}

// Commits returns the number of committed transactions.
func (b *Broker) Commits() int64 { return b.commits.Load() }

// Clock returns the current commit timestamp.
func (b *Broker) Clock() uint64 { return b.clock.Load() }

// Commit serializes one write set: timestamp, log append, synchronous
// OLTP push. Exposed directly for in-process clients (the coordinator);
// remote clients send MsgCommit.
func (b *Broker) Commit(writes []LogWrite) (pos uint64, ts uint64, err error) {
	return b.commitTraced(writes, stats.SpanContext{})
}

// commitTraced is Commit continuing the client's trace when its MsgCommit
// carried a SpanContext: the broker's commit span — and the shared-log
// append under it — lands in the same trace tree as the coordinator's
// query. A zero context starts a fresh trace.
func (b *Broker) commitTraced(writes []LogWrite, tc stats.SpanContext) (pos uint64, ts uint64, err error) {
	b.mu.Lock()
	obs, tracer := b.obs, b.tracer
	b.mu.Unlock()
	t0 := time.Now()
	span := tracer.StartRemote("commit", tc, "service=v2transact", fmt.Sprintf("writes=%d", len(writes)))
	defer span.Finish()

	ts = b.clock.Add(1)
	entry := LogEntry{TS: ts, Writes: writes}
	data, err := json.Marshal(entry)
	if err != nil {
		return 0, 0, err
	}
	app := span.Child("log_append")
	pos, err = b.log.Append(data)
	if err != nil {
		// The log client repairs transient failures itself (hole fills,
		// epoch adoption), so an error here means the configuration moved
		// under this broker — a Seal/Reconfigure fenced its epoch. Re-sync
		// with the units and retry once before failing the commit.
		obs.Counter("soe_commit_log_recoveries_total", "service=v2transact").Inc()
		b.log.Reseal()
		pos, err = b.log.Append(data)
	}
	app.Finish()
	if err != nil {
		return 0, 0, err
	}
	entry.Pos = pos
	b.commits.Add(1)
	obs.Counter("soe_commits_total", "service=v2transact").Inc()
	obs.Counter("soe_commit_bytes_total", "service=v2transact").Add(int64(len(data)))

	// OLTP nodes update "during the update transaction": synchronous push
	// before the commit is acknowledged.
	b.mu.Lock()
	targets := append([]string(nil), b.oltpNodes...)
	b.mu.Unlock()
	req := ApplyReq{Token: b.disc.Token(), Entries: []LogEntry{entry}}
	push := span.Child("oltp_push", fmt.Sprintf("targets=%d", len(targets)))
	for _, node := range targets {
		// A crashed OLTP node must not block commits (availability over
		// consistency, §IV-B); it will catch up from the log on recovery.
		call[ExecResp](b.net, b.Name, node, MsgApply, req)
	}
	push.Finish()
	obs.Histogram("soe_commit_ms", "service=v2transact").ObserveSince(t0)
	return pos, ts, nil
}

// commitIdempotent wraps Commit with transaction-token deduplication. A
// retried request for a completed transaction returns the original
// position and timestamp; a retry racing its own still-running original
// (the network cannot cancel in-flight calls) waits for it instead of
// committing a duplicate. Failed commits are not cached — the client's
// next retry re-attempts them.
func (b *Broker) commitIdempotent(r CommitReq, tc stats.SpanContext) CommitResp {
	if r.TxnID == "" {
		pos, ts, err := b.commitTraced(r.Writes, tc)
		if err != nil {
			return CommitResp{Err: err.Error()}
		}
		return CommitResp{Pos: pos, TS: ts}
	}
	for {
		b.cmu.Lock()
		if resp, ok := b.done[r.TxnID]; ok {
			b.cmu.Unlock()
			b.mu.Lock()
			obs, tracer := b.obs, b.tracer
			b.mu.Unlock()
			obs.Counter("soe_commit_dedup_total", "service=v2transact").Inc()
			// Record the dedup hit in the caller's trace: a retried commit
			// answered from the transaction cache is an event worth seeing.
			if tc.Valid() {
				tracer.StartRemote("commit", tc, "service=v2transact", "dedup=true").Finish()
			}
			return resp
		}
		if ch, ok := b.pending[r.TxnID]; ok {
			b.cmu.Unlock()
			<-ch // original finished (or failed); re-check the cache
			continue
		}
		ch := make(chan struct{})
		b.pending[r.TxnID] = ch
		b.cmu.Unlock()

		pos, ts, err := b.commitTraced(r.Writes, tc)

		b.cmu.Lock()
		delete(b.pending, r.TxnID)
		var resp CommitResp
		if err != nil {
			resp = CommitResp{Err: err.Error()}
		} else {
			resp = CommitResp{Pos: pos, TS: ts}
			b.done[r.TxnID] = resp
			b.order = append(b.order, r.TxnID)
			if len(b.order) > maxTxnCache {
				delete(b.done, b.order[0])
				b.order = b.order[1:]
			}
		}
		b.cmu.Unlock()
		close(ch)
		return resp
	}
}

// ReadLog serves the OLAP polling path.
func (b *Broker) ReadLog(from uint64, max int) ([]LogEntry, uint64) {
	raw, positions, next := b.log.ReadFrom(from, max)
	entries := make([]LogEntry, 0, len(raw))
	for i, d := range raw {
		var e LogEntry
		if json.Unmarshal(d, &e) == nil {
			e.Pos = positions[i]
			entries = append(entries, e)
		}
	}
	return entries, next
}

func (b *Broker) handle(from string, req netsim.Message) (netsim.Message, error) {
	switch req.Kind {
	case MsgCommit:
		r, err := decode[CommitReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !b.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgCommit, Payload: encode(CommitResp{Err: "unauthorized"})}, nil
		}
		return netsim.Message{Kind: MsgCommit, Payload: encode(b.commitIdempotent(r, req.Trace))}, nil

	case MsgPoll:
		r, err := decode[PollReq](req)
		if err != nil {
			return netsim.Message{}, err
		}
		if !b.disc.Validate(r.Token) {
			return netsim.Message{Kind: MsgPoll, Payload: encode(PollResp{Err: "unauthorized"})}, nil
		}
		entries, next := b.ReadLog(r.From, r.Max)
		return netsim.Message{Kind: MsgPoll, Payload: encode(PollResp{Entries: entries, Next: next, Tail: b.log.Tail()})}, nil
	}
	return netsim.Message{}, nil
}
