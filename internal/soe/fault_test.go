package soe

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/value"
)

// The TestFT suite is the fault-injection half of the SOE tests: node
// crashes and link partitions injected through netsim, exercised against
// the coordinator's retry/failover/partial-result machinery and the
// broker's idempotent commits. `make chaos` runs it under -race.

// fastRetry keeps injected-fault tests quick: crashes surface instantly in
// netsim, so short backoffs lose nothing.
var fastRetry = RetryPolicy{MaxAttempts: 3, TaskTimeout: time.Second, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}

func histCount(snap stats.Snapshot, name, label string) int64 {
	for _, h := range snap.Histograms {
		if h.Name != name {
			continue
		}
		for _, l := range h.Labels {
			if l == label {
				return h.Count
			}
		}
	}
	return 0
}

func TestFTQueryFailsOverToReplica(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 60)
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	healthy, err := c.Query(`SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}

	c.Net.Crash(c.Nodes[1].Name)
	got, err := c.Query(`SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatalf("query did not fail over: %v", err)
	}
	if got.Completeness != 1 || got.Partial {
		t.Fatalf("failover result mislabelled: completeness=%v partial=%v", got.Completeness, got.Partial)
	}
	if len(got.Rows) != len(healthy.Rows) {
		t.Fatalf("rows %d vs healthy %d", len(got.Rows), len(healthy.Rows))
	}
	for i := range healthy.Rows {
		if canonKey(got.Rows[i]) != canonKey(healthy.Rows[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], healthy.Rows[i])
		}
	}
	snap := c.Obs.Snapshot()
	if snap.CounterTotal("soe_failovers_total") == 0 {
		t.Fatal("no failovers recorded")
	}
}

func TestFTPartitionedLinkFailsOverToReplica(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 45)
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	// The node is alive but unreachable from the coordinator.
	c.Net.Partition(c.Coordinator.Name, c.Nodes[0].Name)
	defer c.Net.Heal(c.Coordinator.Name, c.Nodes[0].Name)
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatalf("query did not route around partition: %v", err)
	}
	if r.Rows[0][0].AsInt() != 45 || r.Completeness != 1 {
		t.Fatalf("count=%v completeness=%v", r.Rows[0][0], r.Completeness)
	}
}

func TestFTPartialResultsLabelled(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 60)
	victim := c.Nodes[2].Name
	c.Net.Crash(victim)

	// Default mode: lost coverage with no replica fails the query.
	if _, err := c.Query(`SELECT COUNT(*) FROM orders`); err == nil {
		t.Fatal("expected failure without PartialResults")
	}

	// Degraded mode: the survivors answer, labelled with the fraction.
	c.Coordinator.PartialResults = true
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if !r.Partial || r.Completeness >= 1 || r.Completeness <= 0 {
		t.Fatalf("partial result mislabelled: completeness=%v partial=%v", r.Completeness, r.Partial)
	}
	if len(r.Lost) == 0 || !strings.Contains(r.Lost[0], victim) {
		t.Fatalf("lost coverage not described: %v", r.Lost)
	}
	if r.Rows[0][0].AsInt() >= 60 || r.Rows[0][0].AsInt() <= 0 {
		t.Fatalf("partial count=%v", r.Rows[0][0])
	}
	if c.Obs.Snapshot().CounterTotal("soe_degraded_queries_total") == 0 {
		t.Fatal("degraded queries not counted")
	}
}

func TestFTColocatedJoinFailsOver(t *testing.T) {
	c := newTestCluster(t, 3, OLTP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 30)
	if _, err := c.CreateTable("items", itemsSchema(), "order_id", 2*len(c.Nodes)); err != nil {
		t.Fatal(err)
	}
	var items []value.Row
	for i := 0; i < 30; i++ {
		items = append(items, value.Row{
			value.String("I" + string(rune('A'+i%26))), value.String("O000" + string(rune('0'+i%10))), value.Int(int64(i)),
		})
	}
	if _, err := c.Insert("items", items...); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplicateTable("items"); err != nil {
		t.Fatal(err)
	}
	q := `SELECT orders.region, COUNT(*) FROM orders JOIN items ON orders.id = items.order_id GROUP BY orders.region ORDER BY orders.region`
	healthy, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	c.Net.Crash(c.Nodes[0].Name)
	got, err := c.Query(q)
	if err != nil {
		t.Fatalf("co-located join did not fail over: %v", err)
	}
	if got.Completeness != 1 || len(got.Rows) != len(healthy.Rows) {
		t.Fatalf("completeness=%v rows=%d vs %d", got.Completeness, len(got.Rows), len(healthy.Rows))
	}
	for i := range healthy.Rows {
		if canonKey(got.Rows[i]) != canonKey(healthy.Rows[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], healthy.Rows[i])
		}
	}
}

func TestFTCommitRetriesAcrossHealedPartition(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	c.Coordinator.Retry = RetryPolicy{MaxAttempts: 20, TaskTimeout: time.Second, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	loadOrders(t, c, 10)

	c.Net.Partition(c.Coordinator.Name, c.Broker.Name)
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Net.Heal(c.Coordinator.Name, c.Broker.Name)
	}()
	if _, err := c.Insert("orders", value.Row{value.String("O9998"), value.String("APJ"), value.Float(2)}); err != nil {
		t.Fatalf("commit did not survive healed partition: %v", err)
	}
	if c.Obs.Snapshot().CounterTotal("soe_commit_retries_total") == 0 {
		t.Fatal("no commit retries recorded")
	}
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsInt() != 11 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
}

func TestFTIdempotentCommitTokens(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 5)
	before := c.Broker.Commits()

	req := CommitReq{
		Token: c.Disc.Token(), TxnID: "client-txn-42",
		Writes: []LogWrite{{Table: "orders", Partition: 0, Kind: 0,
			Row: value.Row{value.String("O7777"), value.String("EMEA"), value.Float(9)}}},
	}
	first, err := call[CommitResp](c.Net, "testclient", c.Broker.Name, MsgCommit, req)
	if err != nil || first.Err != "" {
		t.Fatalf("commit: %v %s", err, first.Err)
	}
	// The retry of the same transaction must not be applied twice.
	second, err := call[CommitResp](c.Net, "testclient", c.Broker.Name, MsgCommit, req)
	if err != nil || second.Err != "" {
		t.Fatalf("retry: %v %s", err, second.Err)
	}
	if second.Pos != first.Pos || second.TS != first.TS {
		t.Fatalf("retry re-committed: %+v vs %+v", second, first)
	}
	if got := c.Broker.Commits() - before; got != 1 {
		t.Fatalf("commits=%d, want 1", got)
	}
	if n, _ := c.Obs.Snapshot().Counter("soe_commit_dedup_total", "service=v2transact"); n != 1 {
		t.Fatalf("dedup counter=%d", n)
	}
	r, err := c.Query(`SELECT COUNT(*) FROM orders WHERE id = 'O7777'`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsInt() != 1 {
		t.Fatalf("row applied %v times", r.Rows[0][0])
	}
}

func TestFTNodeRecoveryMidRetry(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	c.Coordinator.Retry = RetryPolicy{MaxAttempts: 30, TaskTimeout: time.Second, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	loadOrders(t, c, 20)
	victim := c.Nodes[1].Name
	c.Net.Crash(victim)
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Net.Recover(victim)
	}()
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatalf("query did not survive recovery mid-retry: %v", err)
	}
	if r.Rows[0][0].AsInt() != 20 || r.Completeness != 1 {
		t.Fatalf("count=%v completeness=%v", r.Rows[0][0], r.Completeness)
	}
	if c.Obs.Snapshot().CounterTotal("soe_task_retries_total") == 0 {
		t.Fatal("no task retries recorded")
	}
}

// Regression (data loss): moving a partition onto a node that already
// holds it (here: as its replica) must fail WITHOUT dropping the rows —
// the pre-fix code unhosted the source before the destination accepted.
func TestFTMovePartitionOntoReplicaKeepsRows(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	loadOrders(t, c, 40)
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Catalog.Table("orders")
	part := 0
	from := tbl.NodeOf[part]
	to := c.Catalog.Replicas("orders", part)[0]

	if err := c.Manager.MovePartition("orders", part, from, to); err == nil {
		t.Fatal("move onto replica holder should fail")
	}
	if tbl.NodeOf[part] != from {
		t.Fatalf("catalog moved despite failure: %s", tbl.NodeOf[part])
	}
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsInt() != 40 {
		t.Fatalf("rows lost by failed move: count=%v", r.Rows[0][0])
	}
}

// Regression (metrics skew): failed fan-outs must record under
// result=error, leaving the success histogram and scan counters clean.
func TestFTFanoutMetricsLabelledByOutcome(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 20)
	if _, err := c.Query(`SELECT COUNT(*) FROM orders`); err != nil {
		t.Fatal(err)
	}
	snap := c.Obs.Snapshot()
	okBefore := histCount(snap, "soe_fanout_ms", "result=ok")
	if okBefore == 0 {
		t.Fatal("healthy fan-out not recorded under result=ok")
	}
	scannedOK, _ := snap.Counter("soe_fanout_rows_scanned_total", "service=v2dqp", "result=ok")
	if scannedOK == 0 {
		t.Fatal("healthy scan cost not recorded under result=ok")
	}

	c.Net.Crash(c.Nodes[1].Name)
	if _, err := c.Query(`SELECT COUNT(*) FROM orders`); err == nil {
		t.Fatal("expected failure (no replicas)")
	}
	snap = c.Obs.Snapshot()
	if got := histCount(snap, "soe_fanout_ms", "result=ok"); got != okBefore {
		t.Fatalf("failed fan-out polluted the success histogram: %d -> %d", okBefore, got)
	}
	if histCount(snap, "soe_fanout_ms", "result=error") == 0 {
		t.Fatal("failed fan-out not recorded under result=error")
	}
}

// The fault-path counters must survive the trip through the Prometheus
// text exposition: a scrape of a wounded cluster shows the failover,
// retry and outcome-labelled fan-out series a dashboard would alert on,
// with TYPE headers and quoted labels — not just the internal snapshot.
func TestFTChaosMetricsExposedAsPrometheus(t *testing.T) {
	c := newTestCluster(t, 2, OLTP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 20)
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	c.Net.Crash(c.Nodes[1].Name)
	if _, err := c.Query(`SELECT COUNT(*) FROM orders`); err != nil {
		t.Fatalf("query did not fail over: %v", err)
	}

	text := c.Obs.Snapshot().Prometheus()
	for _, want := range []string{
		"# TYPE soe_failovers_total counter",
		`soe_failovers_total{service="v2dqp"}`,
		"# TYPE soe_task_retries_total counter",
		"# TYPE soe_fanout_ms histogram",
		`soe_fanout_ms_count{`,
		`result="ok"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, text)
		}
	}
}

// A node that can never reach the broker stays a laggard and is reported
// as such, while caught-up peers are not.
func TestFTWaitForFreshnessReportsStuckLaggard(t *testing.T) {
	c := newTestCluster(t, 2, OLAP)
	loadOrders(t, c, 12)
	stuck := c.Nodes[1].Name
	c.Net.Partition(stuck, c.Broker.Name)
	defer c.Net.Heal(stuck, c.Broker.Name)
	for {
		applied, err := c.Nodes[0].PollOnce(4096)
		if err != nil {
			t.Fatal(err)
		}
		if applied == 0 {
			break
		}
	}
	lag := c.Manager.WaitForFreshness(c.Broker.Clock(), 20*time.Millisecond)
	if len(lag) != 1 || lag[0] != stuck {
		t.Fatalf("laggards=%v, want [%s]", lag, stuck)
	}
}

// An OLAP replica serving a failed-over read first catches up to the
// coordinator's last commit timestamp — the freshness bound.
func TestFTFailoverCatchesUpOLAPReplica(t *testing.T) {
	c := newTestCluster(t, 2, OLAP)
	c.Coordinator.Retry = fastRetry
	loadOrders(t, c, 16)
	if err := c.SyncOLAP(); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplicateTable("orders"); err != nil {
		t.Fatal(err)
	}
	// New commit after replication: replicas have not polled it yet.
	if _, err := c.Insert("orders", value.Row{value.String("O9997"), value.String("EMEA"), value.Float(3)}); err != nil {
		t.Fatal(err)
	}
	victim := c.Nodes[0].Name
	c.Net.Crash(victim)
	r, err := c.Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatalf("OLAP failover failed: %v", err)
	}
	if r.Rows[0][0].AsInt() != 17 {
		t.Fatalf("stale failover read: count=%v, want 17", r.Rows[0][0])
	}
}
