package soe

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/extstore"
)

// Partition tiering across the scale-out landscape: the cluster catalog
// records which tier every partition lives in (data discovery carries
// temperature, §III + §IV-B), and each data node owns an extended store
// so its copies — primary or replica — can page out. The coordinator's
// fan-out and failover paths need no changes: node-local scans read warm
// partitions through the buffer pool transparently, so failed-over reads
// land on warm replicas and still return identical rows.

// SetPartitionTier records the storage tier of one partition in the
// data-discovery map.
func (c *ClusterCatalog) SetPartitionTier(table string, part int, tier catalog.Tier) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	if part < 0 || part >= t.Partitions {
		return fmt.Errorf("soe: partition %d out of range", part)
	}
	if t.tiers == nil {
		t.tiers = map[int]catalog.Tier{}
	}
	t.tiers[part] = tier
	return nil
}

// PartitionTier returns the recorded tier of one partition (hot when
// never set).
func (c *ClusterCatalog) PartitionTier(table string, part int) catalog.Tier {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok || t.tiers == nil {
		return catalog.TierHot
	}
	if tier, ok := t.tiers[part]; ok {
		return tier
	}
	return catalog.TierHot
}

// Warm returns the node's extended store, created on first use over an
// anonymous temp file.
func (n *DataNode) Warm() (*extstore.Store, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.warm == nil {
		s, err := extstore.OpenTemp(extstore.Options{})
		if err != nil {
			return nil, err
		}
		s.SetTracer(n.tracer)
		n.warm = s
	}
	return n.warm, nil
}

// DemotePartition pages this node's copy of one partition — primary or
// replica — out to the node's extended store. Log application keeps
// working: new writes land in the hot delta on top of the paged main.
func (n *DataNode) DemotePartition(table string, part int) error {
	warm, err := n.Warm()
	if err != nil {
		return err
	}
	p, err := n.localPartition(table, part)
	if err != nil {
		return err
	}
	return warm.Demote(p, n.eng.Mgr.MinActiveTS())
}

// PromotePartition re-hydrates this node's copy of one partition.
func (n *DataNode) PromotePartition(table string, part int) error {
	warm, err := n.Warm()
	if err != nil {
		return err
	}
	p, err := n.localPartition(table, part)
	if err != nil {
		return err
	}
	return warm.Promote(p, n.eng.Mgr.MinActiveTS())
}

// localPartition resolves the catalog wrapper of a hosted partition.
func (n *DataNode) localPartition(table string, part int) (*catalog.Partition, error) {
	n.mu.Lock()
	_, hosts := n.hosted[table][part]
	n.mu.Unlock()
	if !hosts {
		return nil, fmt.Errorf("soe: %s does not host %s partition %d", n.Name, table, part)
	}
	entry, ok := n.eng.Cat.Table(partTableName(table, part))
	if !ok || len(entry.Partitions) == 0 {
		return nil, fmt.Errorf("soe: %s: no catalog entry for %s partition %d", n.Name, table, part)
	}
	return entry.Partitions[0], nil
}

// closeWarm releases the node's extended store (cluster shutdown).
func (n *DataNode) closeWarm() {
	n.mu.Lock()
	w := n.warm
	n.warm = nil
	n.mu.Unlock()
	if w != nil {
		w.Close()
	}
}

// DemoteTable pages every copy of every partition of a table — primaries
// and registered replicas — to the warm tier and records the tier in the
// cluster catalog so placement decisions see the temperature.
func (c *Cluster) DemoteTable(table string) error {
	t, ok := c.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("soe: unknown table %q", table)
	}
	byName := map[string]*DataNode{}
	for _, n := range c.Nodes {
		byName[n.Name] = n
	}
	for p := 0; p < t.Partitions; p++ {
		hosts := append([]string{t.NodeOf[p]}, c.Catalog.Replicas(table, p)...)
		for _, h := range hosts {
			node := byName[h]
			if node == nil {
				return fmt.Errorf("soe: partition %d host %q not in cluster", p, h)
			}
			if err := node.DemotePartition(table, p); err != nil {
				return err
			}
		}
		if err := c.Catalog.SetPartitionTier(table, p, catalog.TierExtended); err != nil {
			return err
		}
	}
	return nil
}
