// Package soe implements the SAP HANA Scale-Out Extension of §IV: the
// service landscape of Figure 3 running over the simulated cluster
// network. Components and their paper names:
//
//	DataNode     — v2lqp: query service + data service over horizontal
//	               table partitions, with OLTP (synchronous log apply) and
//	               OLAP (asynchronous polling, bounded staleness) modes
//	Broker       — v2transact: transaction broker serializing all writes
//	               into the CORFU-style shared log (package sharedlog)
//	ClusterCatalog — v2catalog: schemas + partition→node data discovery
//	Discovery    — v2disc&auth: service registry and token authorization
//	Coordinator  — v2dqp: translates SQL into a DAG of tasks executed by
//	               the query services (package distql holds the plan model)
//	Manager      — v2clustermgr: supervision, hotspot detection,
//	               partition movement
//	StatsService — v2stats: landscape-wide metrics aggregation over the
//	               per-node registries (package stats holds the registry,
//	               histogram and tracing primitives)
package soe

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/value"
)

// Message kinds of the SOE wire protocol.
const (
	MsgExec       = "exec"        // run SQL on a node's local engine
	MsgCreateTemp = "create_temp" // install a temp table (broadcast/shuffle)
	MsgApply      = "apply"       // push log entries (OLTP synchronous)
	MsgPoll       = "read_log"    // pull log entries (OLAP asynchronous)
	MsgCommit     = "commit"      // client -> broker
	MsgStatus     = "status"
	MsgSnapshot   = "snapshot"   // fetch a partition snapshot from a peer
	MsgStatsPull  = "stats_pull" // fetch a metrics-registry snapshot (v2stats)
	MsgCatchUp    = "catch_up"   // ask a replica to reach a freshness bound
)

// ExecReq asks a query service to run local SQL. When Parts is set the
// request is partition-scoped: the node runs the SQL once per listed
// partition of Table (and Table2 for co-located joins), substituting the
// physical partition relations — the addressing mode the coordinator uses
// so a node hosting both primaries and replicas only scans the partitions
// a task names.
type ExecReq struct {
	Token  string
	SQL    string
	Table  string // logical table the scoping applies to
	Table2 string // co-located join partner, scoped in lockstep
	Parts  []int  // partitions of Table (and Table2) to scan
}

// ExecResp carries a result set plus the executing node's scan accounting,
// so the coordinator can attribute distributed query cost per task: rows
// examined and, when the node ran the query on the vectorized executor,
// the number of morsels its worker pool dispatched.
type ExecResp struct {
	Cols        []string
	Rows        []value.Row
	RowsScanned int
	Morsels     int
	// Completeness is set by the coordinator's client-facing endpoint:
	// the fraction of required coverage behind the rows (1.0 = complete).
	Completeness float64
	Err          string
}

// CreateTempReq installs a materialized temp relation on a node.
type CreateTempReq struct {
	Token  string
	Name   string
	Cols   []string
	Kinds  []uint8
	Rows   []value.Row
	Append bool // append to existing temp (shuffle receivers)
}

// CommitReq is one transaction's write set sent to the broker. TxnID, when
// non-empty, is an idempotency token: the broker remembers completed
// transactions by it, so a client retrying after a timeout (the simulated
// network cannot cancel an in-flight call) never applies the same write
// set twice.
type CommitReq struct {
	Token  string
	TxnID  string
	Writes []LogWrite
}

// CommitResp acknowledges with the log position and commit timestamp.
type CommitResp struct {
	Pos uint64
	TS  uint64
	Err string
}

// LogWrite is one row operation inside a log entry.
type LogWrite struct {
	Table     string // logical table
	Partition int    // horizontal partition index
	Kind      uint8  // 0 insert, 1 delete-by-key
	Row       value.Row
	Key       string // delete key (value of the partition key column)
}

// LogEntry is the unit stored in the shared log. Pos is the log position,
// filled by the broker so receivers can resume polling after a snapshot
// catch-up.
type LogEntry struct {
	TS     uint64
	Pos    uint64
	Writes []LogWrite
}

// ApplyReq pushes entries to an OLTP node.
type ApplyReq struct {
	Token   string
	Entries []LogEntry
}

// PollReq asks the broker for log entries from a position.
type PollReq struct {
	Token string
	From  uint64
	Max   int
}

// PollResp returns entries, the next poll position, and the log tail at
// serve time (lets pollers measure their apply backlog).
type PollResp struct {
	Entries []LogEntry
	Next    uint64
	Tail    uint64
	Err     string
}

// SnapshotReq asks a peer for the current contents of one partition.
type SnapshotReq struct {
	Token     string
	Table     string
	Partition int
}

// SnapshotResp carries the partition rows plus the log position through
// which they are current — "retrieving the latest snapshot of the data
// hosted by a particular node" (§IV-B).
type SnapshotResp struct {
	Rows      []value.Row
	AppliedTS uint64
	NextPos   uint64
	Err       string
}

// CatchUpReq asks a replica-holding node to reach a freshness bound before
// serving a failover read: drain the log until MinTS is applied, falling
// back to snapshot fetches from the listed peers (partition → node) when
// polling makes no progress.
type CatchUpReq struct {
	Token string
	Table string
	MinTS uint64
	Peers map[int]string
}

// CatchUpResp reports the freshness the node reached.
type CatchUpResp struct {
	AppliedTS uint64
	Err       string
}

// StatsReq asks an endpoint for its metrics-registry snapshot (v2stats).
type StatsReq struct {
	Token string
}

// StatsResp carries a metrics snapshot — a node's own registry, or the
// merged landscape view when the v2stats service itself is asked.
type StatsResp struct {
	Snapshot stats.Snapshot
	Err      string
}

// StatusResp is a node heartbeat.
type StatusResp struct {
	Node        string
	AppliedTS   uint64
	Partitions  int
	QueriesRun  int64
	RowsScanned int64
}

func encode(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("soe: encode: %v", err))
	}
	return b
}

func decode[T any](m netsim.Message) (T, error) {
	var out T
	err := json.Unmarshal(m.Payload, &out)
	return out, err
}

func errUnknownMsg(svc, kind string) error {
	return fmt.Errorf("soe: %s: unknown message %q", svc, kind)
}

// call performs a typed RPC.
func call[T any](net *netsim.Network, from, to, kind string, req any) (T, error) {
	return callTraced[T](net, from, to, kind, req, stats.SpanContext{})
}

// callTraced is call with a span context riding the message envelope, so
// the remote handler can parent its own spans into the caller's trace
// (cross-node propagation: one TraceID covers coordinator, nodes, broker
// and shared log). A zero context degrades to an untraced call.
func callTraced[T any](net *netsim.Network, from, to, kind string, req any, tc stats.SpanContext) (T, error) {
	var zero T
	resp, err := net.Call(from, to, netsim.Message{Kind: kind, Payload: encode(req), Trace: tc})
	if err != nil {
		return zero, err
	}
	return decode[T](resp)
}

// errTaskTimeout marks a call abandoned by its per-attempt deadline.
var errTaskTimeout = errors.New("soe: task timed out")

// callWithTimeout is call with a per-attempt deadline. The simulated
// network has no cancellation: a timed-out call may still complete on the
// server, which is why retried requests must be idempotent (commit TxnIDs,
// read-only execs). d <= 0 disables the deadline.
func callWithTimeout[T any](net *netsim.Network, from, to, kind string, req any, d time.Duration) (T, error) {
	return callTracedTimeout[T](net, from, to, kind, req, stats.SpanContext{}, d)
}

// callTracedTimeout is callWithTimeout carrying a span context.
func callTracedTimeout[T any](net *netsim.Network, from, to, kind string, req any, tc stats.SpanContext, d time.Duration) (T, error) {
	if d <= 0 {
		return callTraced[T](net, from, to, kind, req, tc)
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := callTraced[T](net, from, to, kind, req, tc)
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-time.After(d):
		var zero T
		return zero, fmt.Errorf("%w: %s->%s %s after %v", errTaskTimeout, from, to, kind, d)
	}
}
