// Package appbridge implements the application/database bridge of §III:
// business functionality pushed down from the application layer into the
// engine — currency conversion (the paper's canonical "100s of lines"
// example), unit conversion, a manufacturing calendar — plus the
// application-knowledge hooks: generated-key sequences whose stable sort
// order lets the column store merge without dictionary resorting.
package appbridge

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// CurrencyConverter resolves exchange rates with date validity and
// triangulation over a reference currency, mirroring the shape of the
// real business process.
type CurrencyConverter struct {
	mu    sync.RWMutex
	ref   string                 // reference currency for triangulation
	rates map[string][]datedRate // currency -> rates to ref, date ascending
}

type datedRate struct {
	from int64 // valid-from, unix micros
	rate float64
}

// NewCurrencyConverter returns a converter triangulating over ref.
func NewCurrencyConverter(ref string) *CurrencyConverter {
	c := &CurrencyConverter{ref: ref, rates: map[string][]datedRate{}}
	c.SetRate(ref, 0, 1)
	return c
}

// SetRate declares that one unit of cur equals rate units of the reference
// currency from validFrom (unix micros) on. Rates must be added in
// ascending validFrom order per currency.
func (c *CurrencyConverter) SetRate(cur string, validFrom int64, rate float64) {
	c.mu.Lock()
	c.rates[cur] = append(c.rates[cur], datedRate{from: validFrom, rate: rate})
	c.mu.Unlock()
}

// Convert converts amount from one currency to another at the rate valid
// at date (unix micros).
func (c *CurrencyConverter) Convert(amount float64, from, to string, date int64) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fr, err := c.rateAt(from, date)
	if err != nil {
		return 0, err
	}
	tr, err := c.rateAt(to, date)
	if err != nil {
		return 0, err
	}
	return amount * fr / tr, nil
}

func (c *CurrencyConverter) rateAt(cur string, date int64) (float64, error) {
	rs := c.rates[cur]
	if len(rs) == 0 {
		return 0, fmt.Errorf("appbridge: no rate for currency %q", cur)
	}
	best := -1
	for i, r := range rs {
		if r.from <= date {
			best = i
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("appbridge: no rate for %q valid at %d", cur, date)
	}
	return rs[best].rate, nil
}

// --- unit conversion -----------------------------------------------------

// UnitConverter handles linear unit conversions within a dimension.
type UnitConverter struct {
	mu     sync.RWMutex
	factor map[string]float64 // unit -> factor to the dimension base
	dim    map[string]string  // unit -> dimension name
}

// NewUnitConverter returns a converter preloaded with common units.
func NewUnitConverter() *UnitConverter {
	u := &UnitConverter{factor: map[string]float64{}, dim: map[string]string{}}
	u.Register("kg", "mass", 1)
	u.Register("g", "mass", 0.001)
	u.Register("t", "mass", 1000)
	u.Register("lb", "mass", 0.45359237)
	u.Register("m", "length", 1)
	u.Register("km", "length", 1000)
	u.Register("mi", "length", 1609.344)
	u.Register("l", "volume", 1)
	u.Register("ml", "volume", 0.001)
	u.Register("gal", "volume", 3.785411784)
	return u
}

// Register adds a unit with its factor to the dimension base unit.
func (u *UnitConverter) Register(unit, dimension string, factor float64) {
	u.mu.Lock()
	u.factor[unit] = factor
	u.dim[unit] = dimension
	u.mu.Unlock()
}

// Convert converts v between two units of the same dimension.
func (u *UnitConverter) Convert(v float64, from, to string) (float64, error) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	ff, ok1 := u.factor[from]
	tf, ok2 := u.factor[to]
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("appbridge: unknown unit %q or %q", from, to)
	}
	if u.dim[from] != u.dim[to] {
		return 0, fmt.Errorf("appbridge: cannot convert %s to %s", from, to)
	}
	return v * ff / tf, nil
}

// --- manufacturing calendar ------------------------------------------------

// Calendar models working days: weekends off plus explicit holidays.
type Calendar struct {
	mu       sync.RWMutex
	holidays map[string]bool // "2006-01-02"
}

// NewCalendar returns a calendar with no holidays.
func NewCalendar() *Calendar { return &Calendar{holidays: map[string]bool{}} }

// AddHoliday marks a date (UTC) as non-working.
func (c *Calendar) AddHoliday(t time.Time) {
	c.mu.Lock()
	c.holidays[t.UTC().Format("2006-01-02")] = true
	c.mu.Unlock()
}

// IsWorkingDay reports whether t is a working day.
func (c *Calendar) IsWorkingDay(t time.Time) bool {
	t = t.UTC()
	if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
		return false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return !c.holidays[t.Format("2006-01-02")]
}

// AddWorkingDays returns the date n working days after t (n ≥ 0).
func (c *Calendar) AddWorkingDays(t time.Time, n int) time.Time {
	t = t.UTC()
	for n > 0 {
		t = t.AddDate(0, 0, 1)
		if c.IsWorkingDay(t) {
			n--
		}
	}
	return t
}

// WorkingDaysBetween counts working days in (from, to].
func (c *Calendar) WorkingDaysBetween(from, to time.Time) int {
	from, to = from.UTC(), to.UTC()
	if to.Before(from) {
		return -c.WorkingDaysBetween(to, from)
	}
	n := 0
	for d := from.AddDate(0, 0, 1); !d.After(to); d = d.AddDate(0, 0, 1) {
		if c.IsWorkingDay(d) {
			n++
		}
	}
	return n
}

// --- generated keys ---------------------------------------------------

// KeyGenerator produces the monotonically increasing business keys of
// §III ("concatenating some information from application context plus an
// incremental counter"). Keys from one generator sort strictly ascending,
// which is exactly the property the column store's stable-key merge fast
// path exploits (experiment E3).
type KeyGenerator struct {
	mu      sync.Mutex
	context string
	counter uint64
}

// NewKeyGenerator returns a generator for the given application context.
func NewKeyGenerator(context string) *KeyGenerator {
	return &KeyGenerator{context: context}
}

// Next returns the next key.
func (k *KeyGenerator) Next() string {
	k.mu.Lock()
	k.counter++
	c := k.counter
	k.mu.Unlock()
	return fmt.Sprintf("%s-%012d", k.context, c)
}

// --- SQL surface ------------------------------------------------------

// Bridge bundles the pushed-down business functions for one engine.
type Bridge struct {
	Currency *CurrencyConverter
	Units    *UnitConverter
	Calendar *Calendar
	eng      *sqlexec.Engine
}

// Attach installs the application-bridge functions:
//
//	CONVERT_CURRENCY(amount, from, to, date_micros)
//	CONVERT_UNIT(value, from, to)
//	IS_WORKING_DAY(ts)  /  ADD_WORKING_DAYS(ts, n)
func Attach(eng *sqlexec.Engine, refCurrency string) *Bridge {
	b := &Bridge{
		Currency: NewCurrencyConverter(refCurrency),
		Units:    NewUnitConverter(),
		Calendar: NewCalendar(),
		eng:      eng,
	}
	eng.Reg.RegisterScalar("CONVERT_CURRENCY", func(a []value.Value) (value.Value, error) {
		if len(a) != 4 {
			return value.Null, fmt.Errorf("appbridge: CONVERT_CURRENCY(amount, from, to, date)")
		}
		out, err := b.Currency.Convert(a[0].AsFloat(), a[1].AsString(), a[2].AsString(), a[3].AsInt())
		if err != nil {
			return value.Null, err
		}
		return value.Float(out), nil
	})
	eng.Reg.RegisterScalar("CONVERT_UNIT", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("appbridge: CONVERT_UNIT(value, from, to)")
		}
		out, err := b.Units.Convert(a[0].AsFloat(), a[1].AsString(), a[2].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Float(out), nil
	})
	eng.Reg.RegisterScalar("IS_WORKING_DAY", func(a []value.Value) (value.Value, error) {
		if len(a) != 1 {
			return value.Null, fmt.Errorf("appbridge: IS_WORKING_DAY(ts)")
		}
		return value.Bool(b.Calendar.IsWorkingDay(time.UnixMicro(a[0].AsInt()))), nil
	})
	eng.Reg.RegisterScalar("ADD_WORKING_DAYS", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, fmt.Errorf("appbridge: ADD_WORKING_DAYS(ts, n)")
		}
		out := b.Calendar.AddWorkingDays(time.UnixMicro(a[0].AsInt()), int(a[1].AsInt()))
		return value.TimeMicros(out.UnixMicro()), nil
	})
	return b
}

// RevenueByRegionInDB answers "revenue per region in the reference
// currency" with the conversion pushed into the engine: one aggregated
// row per region crosses the boundary (experiment E5).
func (b *Bridge) RevenueByRegionInDB(table string) (map[string]float64, int, error) {
	res, err := b.eng.Query(fmt.Sprintf(
		`SELECT region, SUM(CONVERT_CURRENCY(amount, currency, '%s', dt)) FROM %s GROUP BY region`,
		b.Currency.ref, table))
	if err != nil {
		return nil, 0, err
	}
	out := map[string]float64{}
	for _, r := range res.Rows {
		out[r[0].AsString()] = r[1].AsFloat()
	}
	return out, len(res.Rows), nil
}

// RevenueByRegionAppSide is the §III baseline: because the conversion
// lives in the application, the query must group by currency too, ship
// every (region, currency) subtotal out, convert in the application and
// re-aggregate. rowsMoved counts the extra transfer.
func (b *Bridge) RevenueByRegionAppSide(table string) (map[string]float64, int, error) {
	res, err := b.eng.Query(fmt.Sprintf(
		`SELECT region, currency, MAX(dt), SUM(amount) FROM %s GROUP BY region, currency`, table))
	if err != nil {
		return nil, 0, err
	}
	out := map[string]float64{}
	for _, r := range res.Rows {
		// NOTE: the app-side version cannot even convert exactly — it no
		// longer has per-row dates, so it applies the latest rate of the
		// group, a real-world correctness hazard the pushdown avoids. To
		// keep results comparable the experiments use a single-rate world.
		conv, err := b.Currency.Convert(r[3].AsFloat(), r[1].AsString(), b.Currency.ref, r[2].AsInt())
		if err != nil {
			return nil, 0, err
		}
		out[r[0].AsString()] += conv
	}
	return out, len(res.Rows), nil
}
