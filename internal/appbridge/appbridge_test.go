package appbridge

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/sqlexec"
)

func TestCurrencyConversionDated(t *testing.T) {
	c := NewCurrencyConverter("EUR")
	c.SetRate("USD", 0, 0.80)
	c.SetRate("USD", 1000, 0.90) // rate change at t=1000
	c.SetRate("KRW", 0, 0.0007)

	got, err := c.Convert(100, "USD", "EUR", 500)
	if err != nil || got != 80 {
		t.Fatalf("got %v err %v", got, err)
	}
	got, _ = c.Convert(100, "USD", "EUR", 2000)
	if got != 90 {
		t.Fatalf("dated rate not used: %v", got)
	}
	// Triangulation USD -> KRW through EUR.
	got, _ = c.Convert(1, "USD", "KRW", 2000)
	if math.Abs(got-0.90/0.0007) > 1e-9 {
		t.Fatalf("triangulated=%v", got)
	}
	// Identity.
	got, _ = c.Convert(42, "EUR", "EUR", 0)
	if got != 42 {
		t.Fatalf("identity=%v", got)
	}
	if _, err := c.Convert(1, "XXX", "EUR", 0); err == nil {
		t.Fatal("unknown currency accepted")
	}
	if _, err := c.Convert(1, "USD", "EUR", -5); err == nil {
		t.Fatal("date before first rate accepted")
	}
}

func TestUnitConversion(t *testing.T) {
	u := NewUnitConverter()
	got, err := u.Convert(1, "kg", "g")
	if err != nil || got != 1000 {
		t.Fatalf("kg->g: %v %v", got, err)
	}
	got, _ = u.Convert(1, "lb", "kg")
	if math.Abs(got-0.45359237) > 1e-12 {
		t.Fatalf("lb->kg: %v", got)
	}
	got, _ = u.Convert(5, "km", "mi")
	if math.Abs(got-3.10686) > 1e-3 {
		t.Fatalf("km->mi: %v", got)
	}
	if _, err := u.Convert(1, "kg", "km"); err == nil {
		t.Fatal("cross-dimension accepted")
	}
	if _, err := u.Convert(1, "kg", "stone"); err == nil {
		t.Fatal("unknown unit accepted")
	}
}

func TestManufacturingCalendar(t *testing.T) {
	c := NewCalendar()
	fri := time.Date(2015, 4, 10, 12, 0, 0, 0, time.UTC) // Friday
	sat := fri.AddDate(0, 0, 1)
	mon := fri.AddDate(0, 0, 3)
	if !c.IsWorkingDay(fri) || c.IsWorkingDay(sat) {
		t.Fatal("weekend handling")
	}
	c.AddHoliday(mon)
	if c.IsWorkingDay(mon) {
		t.Fatal("holiday handling")
	}
	// Next working day after Friday skips Sat/Sun and the Monday holiday.
	next := c.AddWorkingDays(fri, 1)
	if next.Weekday() != time.Tuesday {
		t.Fatalf("next=%v", next.Weekday())
	}
	if n := c.WorkingDaysBetween(fri, fri.AddDate(0, 0, 7)); n != 4 {
		t.Fatalf("working days=%d", n)
	}
	if n := c.WorkingDaysBetween(fri.AddDate(0, 0, 7), fri); n != -4 {
		t.Fatalf("reverse=%d", n)
	}
}

func TestKeyGeneratorMonotonic(t *testing.T) {
	g := NewKeyGenerator("INV")
	var keys []string
	for i := 0; i < 1000; i++ {
		keys = append(keys, g.Next())
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("generated keys not ascending")
	}
	if keys[0] != "INV-000000000001" {
		t.Fatalf("first=%q", keys[0])
	}
}

func newRevenueEngine(t *testing.T) (*sqlexec.Engine, *Bridge) {
	t.Helper()
	eng := sqlexec.NewEngine()
	b := Attach(eng, "EUR")
	b.Currency.SetRate("USD", 0, 0.80)
	b.Currency.SetRate("KRW", 0, 0.0007)
	eng.MustQuery(`CREATE TABLE revenue (region VARCHAR, currency VARCHAR, dt INT, amount DOUBLE)`)
	rows := []struct {
		region, cur string
		amount      float64
	}{
		{"EMEA", "EUR", 100}, {"EMEA", "USD", 50}, {"EMEA", "KRW", 100000},
		{"APJ", "KRW", 500000}, {"APJ", "USD", 20},
		{"AMER", "USD", 300},
	}
	for _, r := range rows {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO revenue VALUES ('%s', '%s', 10, %f)`, r.region, r.cur, r.amount))
	}
	return eng, b
}

func TestRevenuePushdownMatchesAppSide(t *testing.T) {
	_, b := newRevenueEngine(t)
	indb, rowsInDB, err := b.RevenueByRegionInDB("revenue")
	if err != nil {
		t.Fatal(err)
	}
	app, rowsApp, err := b.RevenueByRegionAppSide("revenue")
	if err != nil {
		t.Fatal(err)
	}
	if len(indb) != 3 {
		t.Fatalf("regions=%v", indb)
	}
	for region, v := range indb {
		if math.Abs(v-app[region]) > 1e-9 {
			t.Fatalf("%s: indb=%v app=%v", region, v, app[region])
		}
	}
	// EMEA = 100 + 50*0.8 + 100000*0.0007 = 210.
	if math.Abs(indb["EMEA"]-210) > 1e-9 {
		t.Fatalf("EMEA=%v", indb["EMEA"])
	}
	// The pushdown ships one row per region; the app side one per
	// (region, currency) — strictly more (§III's transfer multiplication).
	if rowsInDB != 3 || rowsApp != 6 {
		t.Fatalf("rowsInDB=%d rowsApp=%d", rowsInDB, rowsApp)
	}
}

func TestSQLSurface(t *testing.T) {
	eng, _ := newRevenueEngine(t)
	r := eng.MustQuery(`SELECT CONVERT_CURRENCY(100, 'USD', 'EUR', 10)`)
	if r.Rows[0][0].F != 80 {
		t.Fatalf("converted=%v", r.Rows[0][0])
	}
	r = eng.MustQuery(`SELECT CONVERT_UNIT(2, 't', 'kg')`)
	if r.Rows[0][0].F != 2000 {
		t.Fatalf("unit=%v", r.Rows[0][0])
	}
	fri := time.Date(2015, 4, 10, 0, 0, 0, 0, time.UTC).UnixMicro()
	r = eng.MustQuery(fmt.Sprintf(`SELECT IS_WORKING_DAY(%d)`, fri))
	if !r.Rows[0][0].AsBool() {
		t.Fatal("friday not working day")
	}
	r = eng.MustQuery(fmt.Sprintf(`SELECT ADD_WORKING_DAYS(%d, 1)`, fri))
	if time.UnixMicro(r.Rows[0][0].I).UTC().Weekday() != time.Monday {
		t.Fatal("add working days broken")
	}
}
