// Package planning implements the planning extensions of §II-D: the
// CPU-heavy operators behind sales/financial planning — disaggregation of
// top-level targets over reference distributions, version copy, and
// logical snapshots (private plan versions) — embedded in the engine and
// reachable from SQL. The paper notes planning is "successful and
// nevertheless overlooked"; experiment E15 compares the in-engine
// disaggregation against the row-shipping application-layer baseline.
package planning

import (
	"fmt"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// Engine wraps a relational engine with planning operators. Plan data
// lives in ordinary tables shaped (version VARCHAR, ..., measure DOUBLE).
type Engine struct {
	eng *sqlexec.Engine
}

// Attach installs the planning engine and its SQL surface:
//
//	PLAN_COPY('table', 'ver_col', 'from', 'to', factor, 'measure_col')
//	PLAN_DISAGGREGATE('table', 'ver_col', 'ref', 'target', total, 'measure_col')
func Attach(eng *sqlexec.Engine) *Engine {
	p := &Engine{eng: eng}
	eng.Reg.RegisterScalar("PLAN_COPY", func(a []value.Value) (value.Value, error) {
		if len(a) != 6 {
			return value.Null, fmt.Errorf("planning: PLAN_COPY(table, ver_col, from, to, factor, measure_col)")
		}
		n, err := p.CopyVersion(a[0].AsString(), a[1].AsString(), a[2].AsString(), a[3].AsString(), a[4].AsFloat(), a[5].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Int(int64(n)), nil
	})
	eng.Reg.RegisterScalar("PLAN_DISAGGREGATE", func(a []value.Value) (value.Value, error) {
		if len(a) != 6 {
			return value.Null, fmt.Errorf("planning: PLAN_DISAGGREGATE(table, ver_col, ref, target, total, measure_col)")
		}
		n, err := p.Disaggregate(a[0].AsString(), a[1].AsString(), a[2].AsString(), a[3].AsString(), a[4].AsFloat(), a[5].AsString())
		if err != nil {
			return value.Null, err
		}
		return value.Int(int64(n)), nil
	})
	return p
}

// CopyVersion copies every row of version `from` to version `to`, scaling
// the measure column by factor — the "copy process" operator. Returns the
// number of rows created. Existing `to` rows are replaced (logical
// snapshot semantics).
func (p *Engine) CopyVersion(table, verCol, from, to string, factor float64, measureCol string) (int, error) {
	entry, ok := p.eng.Cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("planning: unknown table %q", table)
	}
	vi := entry.Schema.ColIndex(verCol)
	mi := entry.Schema.ColIndex(measureCol)
	if vi < 0 || mi < 0 {
		return 0, fmt.Errorf("planning: columns %q/%q not in %s", verCol, measureCol, table)
	}
	// Clear the target version, then copy inside one transaction.
	if _, err := p.eng.Query(fmt.Sprintf("DELETE FROM %s WHERE %s = ?", table, verCol), value.String(to)); err != nil {
		return 0, err
	}
	sess := p.eng.NewSession()
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		return 0, err
	}
	src, err := sess.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s = ?", table, verCol), value.String(from))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, row := range src.Rows {
		copied := row.Clone()
		copied[vi] = value.String(to)
		copied[mi] = value.Float(copied[mi].AsFloat() * factor)
		params := make([]string, len(copied))
		for i := range params {
			params[i] = "?"
		}
		if _, err := sess.Query(fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, joinComma(params)), copied...); err != nil {
			return 0, err
		}
		n++
	}
	return n, sess.Commit()
}

// Snapshot creates a logical snapshot of a version (copy with factor 1) —
// the versioning primitive planning sessions branch from.
func (p *Engine) Snapshot(table, verCol, from, to, measureCol string) (int, error) {
	return p.CopyVersion(table, verCol, from, to, 1, measureCol)
}

// Disaggregate spreads total over the cells of the target version
// proportionally to the reference version's measure distribution. Target
// cells are (re)created from the reference structure. Returns the number
// of cells written. When the reference totals zero, the spread is even.
func (p *Engine) Disaggregate(table, verCol, refVersion, targetVersion string, total float64, measureCol string) (int, error) {
	entry, ok := p.eng.Cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("planning: unknown table %q", table)
	}
	vi := entry.Schema.ColIndex(verCol)
	mi := entry.Schema.ColIndex(measureCol)
	if vi < 0 || mi < 0 {
		return 0, fmt.Errorf("planning: columns %q/%q not in %s", verCol, measureCol, table)
	}
	if _, err := p.eng.Query(fmt.Sprintf("DELETE FROM %s WHERE %s = ?", table, verCol), value.String(targetVersion)); err != nil {
		return 0, err
	}
	sess := p.eng.NewSession()
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		return 0, err
	}
	ref, err := sess.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s = ?", table, verCol), value.String(refVersion))
	if err != nil {
		return 0, err
	}
	if len(ref.Rows) == 0 {
		sess.Rollback()
		return 0, fmt.Errorf("planning: reference version %q is empty", refVersion)
	}
	refTotal := 0.0
	for _, row := range ref.Rows {
		refTotal += row[mi].AsFloat()
	}
	n := 0
	for _, row := range ref.Rows {
		share := total / float64(len(ref.Rows))
		if refTotal != 0 {
			share = total * row[mi].AsFloat() / refTotal
		}
		cell := row.Clone()
		cell[vi] = value.String(targetVersion)
		cell[mi] = value.Float(share)
		params := make([]string, len(cell))
		for i := range params {
			params[i] = "?"
		}
		if _, err := sess.Query(fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, joinComma(params)), cell...); err != nil {
			return 0, err
		}
		n++
	}
	return n, sess.Commit()
}

// DisaggregateAppStyle is the application-layer baseline of §III: every
// reference cell is shipped to the "application", proportions are computed
// there, and each target cell travels back as its own statement — two row
// transfers per cell. Returns cells written and rows moved across the
// app/DB boundary (experiment E15's transfer metric).
func (p *Engine) DisaggregateAppStyle(table, verCol, refVersion, targetVersion string, total float64, measureCol string) (cells, rowsMoved int, err error) {
	entry, ok := p.eng.Cat.Table(table)
	if !ok {
		return 0, 0, fmt.Errorf("planning: unknown table %q", table)
	}
	vi := entry.Schema.ColIndex(verCol)
	mi := entry.Schema.ColIndex(measureCol)
	if _, err := p.eng.Query(fmt.Sprintf("DELETE FROM %s WHERE %s = ?", table, verCol), value.String(targetVersion)); err != nil {
		return 0, 0, err
	}
	// Application pulls the full reference version over the wire.
	ref, err := p.eng.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s = ?", table, verCol), value.String(refVersion))
	if err != nil {
		return 0, 0, err
	}
	rowsMoved += len(ref.Rows)
	refTotal := 0.0
	for _, row := range ref.Rows {
		refTotal += row[mi].AsFloat()
	}
	for _, row := range ref.Rows {
		share := total / float64(len(ref.Rows))
		if refTotal != 0 {
			share = total * row[mi].AsFloat() / refTotal
		}
		cell := row.Clone()
		cell[vi] = value.String(targetVersion)
		cell[mi] = value.Float(share)
		params := make([]string, len(cell))
		for i := range params {
			params[i] = "?"
		}
		// One INSERT round trip per cell.
		if _, err := p.eng.Query(fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, joinComma(params)), cell...); err != nil {
			return 0, 0, err
		}
		rowsMoved++
		cells++
	}
	return cells, rowsMoved, nil
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
