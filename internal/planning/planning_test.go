package planning

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sqlexec"
)

func newPlanEngine(t *testing.T) (*sqlexec.Engine, *Engine) {
	t.Helper()
	eng := sqlexec.NewEngine()
	p := Attach(eng)
	eng.MustQuery(`CREATE TABLE plan (version VARCHAR, region VARCHAR, product VARCHAR, revenue DOUBLE)`)
	// Actuals: a skewed reference distribution.
	cells := []struct {
		region, product string
		rev             float64
	}{
		{"EU", "soap", 600}, {"EU", "towels", 200},
		{"US", "soap", 150}, {"US", "towels", 50},
	}
	for _, c := range cells {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO plan VALUES ('actual2014', '%s', '%s', %f)`, c.region, c.product, c.rev))
	}
	return eng, p
}

func TestCopyVersion(t *testing.T) {
	eng, p := newPlanEngine(t)
	n, err := p.CopyVersion("plan", "version", "actual2014", "plan2015", 1.1, "revenue")
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	r := eng.MustQuery(`SELECT SUM(revenue) FROM plan WHERE version = 'plan2015'`)
	if math.Abs(r.Rows[0][0].F-1100) > 1e-9 {
		t.Fatalf("sum=%v", r.Rows[0][0])
	}
	// Re-copy replaces rather than duplicates.
	p.CopyVersion("plan", "version", "actual2014", "plan2015", 1.0, "revenue")
	r = eng.MustQuery(`SELECT COUNT(*) FROM plan WHERE version = 'plan2015'`)
	if r.Rows[0][0].I != 4 {
		t.Fatalf("count=%v", r.Rows[0][0])
	}
}

func TestSnapshotIsFactorOne(t *testing.T) {
	eng, p := newPlanEngine(t)
	if _, err := p.Snapshot("plan", "version", "actual2014", "snap1", "revenue"); err != nil {
		t.Fatal(err)
	}
	r := eng.MustQuery(`SELECT SUM(revenue) FROM plan WHERE version = 'snap1'`)
	if r.Rows[0][0].F != 1000 {
		t.Fatalf("sum=%v", r.Rows[0][0])
	}
	// Private version: mutating the snapshot leaves actuals untouched.
	eng.MustQuery(`UPDATE plan SET revenue = 0 WHERE version = 'snap1'`)
	r = eng.MustQuery(`SELECT SUM(revenue) FROM plan WHERE version = 'actual2014'`)
	if r.Rows[0][0].F != 1000 {
		t.Fatal("snapshot leaked into source version")
	}
}

func TestDisaggregateProportional(t *testing.T) {
	eng, p := newPlanEngine(t)
	n, err := p.Disaggregate("plan", "version", "actual2014", "target2015", 2000, "revenue")
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// EU soap had 60% share -> 1200.
	r := eng.MustQuery(`SELECT revenue FROM plan WHERE version = 'target2015' AND region = 'EU' AND product = 'soap'`)
	if math.Abs(r.Rows[0][0].F-1200) > 1e-9 {
		t.Fatalf("EU soap=%v", r.Rows[0][0])
	}
	// Total preserved exactly.
	r = eng.MustQuery(`SELECT SUM(revenue) FROM plan WHERE version = 'target2015'`)
	if math.Abs(r.Rows[0][0].F-2000) > 1e-9 {
		t.Fatalf("total=%v", r.Rows[0][0])
	}
}

func TestDisaggregateEvenWhenRefZero(t *testing.T) {
	eng, p := newPlanEngine(t)
	eng.MustQuery(`UPDATE plan SET revenue = 0 WHERE version = 'actual2014'`)
	if _, err := p.Disaggregate("plan", "version", "actual2014", "t", 400, "revenue"); err != nil {
		t.Fatal(err)
	}
	r := eng.MustQuery(`SELECT MIN(revenue), MAX(revenue) FROM plan WHERE version = 't'`)
	if r.Rows[0][0].F != 100 || r.Rows[0][1].F != 100 {
		t.Fatalf("even spread broken: %v", r.Rows[0])
	}
}

func TestDisaggregateErrors(t *testing.T) {
	_, p := newPlanEngine(t)
	if _, err := p.Disaggregate("missing", "version", "a", "b", 1, "revenue"); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := p.Disaggregate("plan", "version", "ghost_version", "b", 1, "revenue"); err == nil {
		t.Fatal("empty reference accepted")
	}
	if _, err := p.CopyVersion("plan", "nope", "a", "b", 1, "revenue"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestAppStyleBaselineMatchesButMovesRows(t *testing.T) {
	eng, p := newPlanEngine(t)
	cells, moved, err := p.DisaggregateAppStyle("plan", "version", "actual2014", "app2015", 2000, "revenue")
	if err != nil || cells != 4 {
		t.Fatalf("cells=%d err=%v", cells, err)
	}
	if moved != 8 { // 4 pulled + 4 pushed
		t.Fatalf("moved=%d", moved)
	}
	// Same result as the in-engine operator.
	p.Disaggregate("plan", "version", "actual2014", "eng2015", 2000, "revenue")
	r := eng.MustQuery(`SELECT a.region, a.product FROM plan a JOIN plan b ON a.region = b.region AND a.product = b.product WHERE a.version = 'app2015' AND b.version = 'eng2015' AND a.revenue <> b.revenue`)
	if len(r.Rows) != 0 {
		t.Fatalf("results differ: %v", r.Rows)
	}
}

func TestSQLSurface(t *testing.T) {
	eng, _ := newPlanEngine(t)
	r := eng.MustQuery(`SELECT PLAN_DISAGGREGATE('plan', 'version', 'actual2014', 'sql2015', 3000, 'revenue')`)
	if r.Rows[0][0].I != 4 {
		t.Fatalf("cells=%v", r.Rows[0][0])
	}
	r = eng.MustQuery(`SELECT PLAN_COPY('plan', 'version', 'sql2015', 'sql2016', 0.5, 'revenue')`)
	if r.Rows[0][0].I != 4 {
		t.Fatalf("copied=%v", r.Rows[0][0])
	}
	r = eng.MustQuery(`SELECT SUM(revenue) FROM plan WHERE version = 'sql2016'`)
	if math.Abs(r.Rows[0][0].F-1500) > 1e-9 {
		t.Fatalf("sum=%v", r.Rows[0][0])
	}
}
