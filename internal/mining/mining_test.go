package mining

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/columnstore"
	"repro/internal/soe"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

var groceries = [][]string{
	{"bread", "milk"},
	{"bread", "diapers", "beer", "eggs"},
	{"milk", "diapers", "beer", "cola"},
	{"bread", "milk", "diapers", "beer"},
	{"bread", "milk", "diapers", "cola"},
}

func TestFrequentItemSets(t *testing.T) {
	freq := FrequentItemSets(groceries, 3)
	bySig := map[string]int{}
	for _, fs := range freq {
		bySig[strings.Join(fs.Items, ",")] = fs.Support
	}
	if bySig["bread"] != 4 || bySig["milk"] != 4 || bySig["diapers"] != 4 || bySig["beer"] != 3 {
		t.Fatalf("singletons: %v", bySig)
	}
	if bySig["beer,diapers"] != 3 {
		t.Fatalf("pair support: %v", bySig)
	}
	if bySig["bread,milk"] != 3 {
		t.Fatalf("bread,milk: %v", bySig)
	}
	if _, ok := bySig["cola"]; ok {
		t.Fatal("cola has support 2 < 3")
	}
}

func TestRulesConfidenceAndLift(t *testing.T) {
	rules := Rules(groceries, 3, 0.9)
	found := false
	for _, r := range rules {
		if strings.Join(r.Antecedent, ",") == "beer" && r.Consequent == "diapers" {
			found = true
			if r.Confidence != 1.0 {
				t.Fatalf("conf=%v", r.Confidence)
			}
			// lift = 1.0 / (4/5) = 1.25
			if r.Lift != 1.25 {
				t.Fatalf("lift=%v", r.Lift)
			}
		}
	}
	if !found {
		t.Fatalf("beer→diapers missing: %v", rules)
	}
	// Lower confidence threshold yields at least as many rules.
	if len(Rules(groceries, 3, 0.1)) < len(rules) {
		t.Fatal("monotonicity broken")
	}
}

func TestEmptyBaskets(t *testing.T) {
	if got := FrequentItemSets(nil, 1); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := Rules(nil, 1, 0.5); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSQLBasketRules(t *testing.T) {
	eng := sqlexec.NewEngine()
	Attach(eng)
	eng.MustQuery(`CREATE TABLE sales (basket VARCHAR, item VARCHAR)`)
	for bi, b := range groceries {
		for _, it := range b {
			eng.MustQuery(fmt.Sprintf(`INSERT INTO sales VALUES ('b%d', '%s')`, bi, it))
		}
	}
	r := eng.MustQuery(`SELECT antecedent, consequent, confidence FROM TABLE(BASKET_RULES('sales', 'basket', 'item', 3, 0.9)) r WHERE r.consequent = 'diapers'`)
	if len(r.Rows) == 0 {
		t.Fatal("no rules found via SQL")
	}
}

// fakeR simulates the external R provider of §II-B.
type fakeR struct{}

func (fakeR) Name() string { return "R" }
func (fakeR) Call(proc string, in map[string][]float64) (map[string][]float64, error) {
	switch proc {
	case "cumsum":
		x := in["x"]
		out := make([]float64, len(x))
		s := 0.0
		for i, v := range x {
			s += v
			out[i] = s
		}
		return map[string][]float64{"cumsum": out}, nil
	default:
		return nil, fmt.Errorf("no procedure %q", proc)
	}
}

func TestExternalProviderCall(t *testing.T) {
	eng := sqlexec.NewEngine()
	m := Attach(eng)
	m.RegisterProvider(fakeR{})
	eng.MustQuery(`CREATE TABLE vals (v DOUBLE)`)
	for i := 1; i <= 4; i++ {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO vals VALUES (%d)`, i))
	}
	r := eng.MustQuery(`SELECT val FROM TABLE(EXT_CALL('R', 'cumsum', 'vals', 'v')) e WHERE e.idx = 3`)
	if len(r.Rows) != 1 || r.Rows[0][0].F != 10 {
		t.Fatalf("rows=%v", r.Rows)
	}
	if _, err := eng.Query(`SELECT * FROM TABLE(EXT_CALL('SAS', 'x', 'vals', 'v')) e`); err == nil {
		t.Fatal("unknown provider accepted")
	}
	if _, err := eng.Query(`SELECT * FROM TABLE(EXT_CALL('R', 'nope', 'vals', 'v')) e`); err == nil {
		t.Fatal("unknown procedure accepted")
	}
}

func TestDistributedPairRulesMatchLocal(t *testing.T) {
	c := soe.NewCluster(soe.ClusterConfig{Nodes: 3, Mode: soe.OLTP})
	defer c.Shutdown()
	schema := columnstore.Schema{
		{Name: "basket", Kind: value.KindString},
		{Name: "item", Kind: value.KindString},
	}
	if _, err := c.CreateTable("sales", schema, "basket", 6); err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for bi, b := range groceries {
		for _, it := range b {
			rows = append(rows, value.Row{value.String(fmt.Sprintf("b%d", bi)), value.String(it)})
		}
	}
	if _, err := c.Insert("sales", rows...); err != nil {
		t.Fatal(err)
	}
	dist, err := DistributedPairRules(c, "sales", "basket", "item", 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// The distributed result must agree with the local a-priori restricted
	// to single-item→single-item rules.
	local := Rules(groceries, 3, 0.9)
	want := map[string]Rule{}
	for _, r := range local {
		if len(r.Antecedent) == 1 {
			want[r.Antecedent[0]+"→"+r.Consequent] = r
		}
	}
	got := map[string]Rule{}
	for _, r := range dist {
		got[r.Antecedent[0]+"→"+r.Consequent] = r
	}
	if len(got) != len(want) {
		t.Fatalf("rule sets differ: got %v want %v", got, want)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || g.Support != w.Support || g.Confidence != w.Confidence || g.Lift != w.Lift {
			t.Fatalf("%s: got %+v want %+v", k, g, w)
		}
	}
	// Co-located execution: partitioned by basket, the self-join stays
	// node-local.
	_, plan, err := c.Coordinator.Query(`SELECT a.item, b.item, COUNT(*) FROM sales a JOIN sales b ON a.basket = b.basket WHERE a.item < b.item GROUP BY a.item, b.item`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy.String() != "colocated" {
		t.Fatalf("strategy=%v", plan.Strategy)
	}
}

func TestDistributedPairRulesEmpty(t *testing.T) {
	c := soe.NewCluster(soe.ClusterConfig{Nodes: 2, Mode: soe.OLTP})
	defer c.Shutdown()
	schema := columnstore.Schema{
		{Name: "basket", Kind: value.KindString},
		{Name: "item", Kind: value.KindString},
	}
	c.CreateTable("empty_sales", schema, "basket", 4)
	rules, err := DistributedPairRules(c, "empty_sales", "basket", "item", 2, 0.5)
	if err != nil || rules != nil {
		t.Fatalf("rules=%v err=%v", rules, err)
	}
}
