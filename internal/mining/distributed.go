package mining

import (
	"fmt"
	"sort"

	"repro/internal/soe"
)

// DistributedPairRules runs the distributed basket analysis of §II-B over
// a scale-out cluster: item supports and pair supports are computed as
// distributed aggregations (the pair counting rides a co-located
// self-join when the table is partitioned by the basket column, so no
// basket ever crosses the network), and only the counts travel to the
// coordinator where rules are derived.
//
// The table must hold one (basket, item) row per item occurrence with the
// basket column as partition key for co-located execution.
func DistributedPairRules(c *soe.Cluster, table, basketCol, itemCol string, minSupport int, minConfidence float64) ([]Rule, error) {
	if minSupport < 1 {
		minSupport = 1
	}

	// Total baskets (COUNT over the per-basket groups).
	rb, err := c.Query(fmt.Sprintf("SELECT %s, COUNT(*) FROM %s GROUP BY %s", basketCol, table, basketCol))
	if err != nil {
		return nil, err
	}
	totalBaskets := len(rb.Rows)
	if totalBaskets == 0 {
		return nil, nil
	}

	// L1: global item supports via distributed aggregation.
	r1, err := c.Query(fmt.Sprintf("SELECT %s, COUNT(*) FROM %s GROUP BY %s", itemCol, table, itemCol))
	if err != nil {
		return nil, err
	}
	support := map[string]int{}
	for _, row := range r1.Rows {
		if n := int(row[1].AsInt()); n >= minSupport {
			support[row[0].AsString()] = n
		}
	}

	// L2: pair supports via a co-located self-join; each node joins only
	// its local baskets.
	q := fmt.Sprintf(
		"SELECT a.%[1]s, b.%[1]s, COUNT(*) FROM %[2]s a JOIN %[2]s b ON a.%[3]s = b.%[3]s WHERE a.%[1]s < b.%[1]s GROUP BY a.%[1]s, b.%[1]s",
		itemCol, table, basketCol)
	r2, plan, err := c.Coordinator.Query(q)
	if err != nil {
		return nil, err
	}
	_ = plan // colocated when partitioned by basket; correct either way

	var rules []Rule
	for _, row := range r2.Rows {
		ia, ib := row[0].AsString(), row[1].AsString()
		n := int(row[2].AsInt())
		if n < minSupport || support[ia] == 0 || support[ib] == 0 {
			continue
		}
		for _, dir := range [][2]string{{ia, ib}, {ib, ia}} {
			conf := float64(n) / float64(support[dir[0]])
			if conf < minConfidence {
				continue
			}
			lift := conf / (float64(support[dir[1]]) / float64(totalBaskets))
			rules = append(rules, Rule{
				Antecedent: []string{dir[0]}, Consequent: dir[1],
				Support: n, Confidence: conf, Lift: lift,
			})
		}
	}
	sort.Slice(rules, func(a, b int) bool {
		if rules[a].Confidence != rules[b].Confidence {
			return rules[a].Confidence > rules[b].Confidence
		}
		if rules[a].Antecedent[0] != rules[b].Antecedent[0] {
			return rules[a].Antecedent[0] < rules[b].Antecedent[0]
		}
		return rules[a].Consequent < rules[b].Consequent
	})
	return rules, nil
}
