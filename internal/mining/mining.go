// Package mining implements the data mining features of §II-B: basket
// analysis (a-priori association rules) embedded in the engine, and the
// external-provider mechanism through which systems like R are invoked as
// "a special operator into the internal data flow graph" — here a Go
// interface whose calls the optimizer-visible SQL functions wrap.
package mining

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/columnstore"
	"repro/internal/sqlexec"
	"repro/internal/value"
)

// ItemSet is a sorted set of items with its support count.
type ItemSet struct {
	Items   []string
	Support int
}

// Rule is an association rule A → B with confidence and lift.
type Rule struct {
	Antecedent []string
	Consequent string
	Support    int
	Confidence float64
	Lift       float64
}

// FrequentItemSets runs a-priori over the baskets at the given minimum
// support count.
func FrequentItemSets(baskets [][]string, minSupport int) []ItemSet {
	if minSupport < 1 {
		minSupport = 1
	}
	// Normalize baskets to sets.
	sets := make([]map[string]bool, len(baskets))
	for i, b := range baskets {
		sets[i] = map[string]bool{}
		for _, it := range b {
			sets[i][it] = true
		}
	}

	// L1.
	counts := map[string]int{}
	for _, s := range sets {
		for it := range s {
			counts[it]++
		}
	}
	var current [][]string
	var out []ItemSet
	for it, c := range counts {
		if c >= minSupport {
			current = append(current, []string{it})
			out = append(out, ItemSet{Items: []string{it}, Support: c})
		}
	}
	sortCandidates(current)

	// Lk from Lk-1.
	for len(current) > 0 {
		cands := generateCandidates(current)
		var next [][]string
		for _, cand := range cands {
			c := countSupport(sets, cand)
			if c >= minSupport {
				next = append(next, cand)
				out = append(out, ItemSet{Items: cand, Support: c})
			}
		}
		sortCandidates(next)
		current = next
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Items) != len(out[b].Items) {
			return len(out[a].Items) < len(out[b].Items)
		}
		return strings.Join(out[a].Items, ",") < strings.Join(out[b].Items, ",")
	})
	return out
}

func sortCandidates(cs [][]string) {
	sort.Slice(cs, func(a, b int) bool { return strings.Join(cs[a], ",") < strings.Join(cs[b], ",") })
}

// generateCandidates joins k-1 sets sharing a prefix.
func generateCandidates(prev [][]string) [][]string {
	var out [][]string
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i], prev[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				continue
			}
			cand := append(append([]string{}, a...), b[k-1])
			sort.Strings(cand)
			out = append(out, cand)
		}
	}
	return out
}

func samePrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func countSupport(sets []map[string]bool, items []string) int {
	c := 0
	for _, s := range sets {
		all := true
		for _, it := range items {
			if !s[it] {
				all = false
				break
			}
		}
		if all {
			c++
		}
	}
	return c
}

// Rules derives association rules with single-item consequents from the
// frequent item sets, keeping those at or above minConfidence.
func Rules(baskets [][]string, minSupport int, minConfidence float64) []Rule {
	freq := FrequentItemSets(baskets, minSupport)
	support := map[string]int{}
	for _, fs := range freq {
		support[strings.Join(fs.Items, ",")] = fs.Support
	}
	n := len(baskets)
	var out []Rule
	for _, fs := range freq {
		if len(fs.Items) < 2 {
			continue
		}
		for i, cons := range fs.Items {
			ante := make([]string, 0, len(fs.Items)-1)
			ante = append(ante, fs.Items[:i]...)
			ante = append(ante, fs.Items[i+1:]...)
			anteSup := support[strings.Join(ante, ",")]
			consSup := support[cons]
			if anteSup == 0 || consSup == 0 {
				continue
			}
			conf := float64(fs.Support) / float64(anteSup)
			if conf < minConfidence {
				continue
			}
			lift := conf / (float64(consSup) / float64(n))
			out = append(out, Rule{Antecedent: ante, Consequent: cons, Support: fs.Support, Confidence: conf, Lift: lift})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Confidence != out[b].Confidence {
			return out[a].Confidence > out[b].Confidence
		}
		return strings.Join(out[a].Antecedent, ",") < strings.Join(out[b].Antecedent, ",")
	})
	return out
}

// Provider is an external analytics system (R, SAS) reachable from the
// data-flow graph. Implementations compute named procedures over columnar
// input.
type Provider interface {
	Name() string
	Call(procedure string, input map[string][]float64) (map[string][]float64, error)
}

// Attach registers the mining SQL surface against an engine:
//
//	TABLE(BASKET_RULES('table', 'basket_col', 'item_col', minsup, minconf))
//	TABLE(EXT_CALL('provider', 'procedure', 'table', 'col'))
func Attach(eng *sqlexec.Engine) *Miner {
	m := &Miner{eng: eng, providers: map[string]Provider{}}
	eng.Reg.RegisterTable("BASKET_RULES", columnstore.Schema{
		{Name: "antecedent", Kind: value.KindString},
		{Name: "consequent", Kind: value.KindString},
		{Name: "support", Kind: value.KindInt},
		{Name: "confidence", Kind: value.KindFloat},
		{Name: "lift", Kind: value.KindFloat},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 5 {
			return nil, fmt.Errorf("mining: BASKET_RULES(table, basket_col, item_col, minsup, minconf)")
		}
		return m.BasketRules(a[0].AsString(), a[1].AsString(), a[2].AsString(), int(a[3].AsInt()), a[4].AsFloat())
	})
	eng.Reg.RegisterTable("EXT_CALL", columnstore.Schema{
		{Name: "name", Kind: value.KindString},
		{Name: "idx", Kind: value.KindInt},
		{Name: "val", Kind: value.KindFloat},
	}, func(a []value.Value) ([]value.Row, error) {
		if len(a) != 4 {
			return nil, fmt.Errorf("mining: EXT_CALL(provider, procedure, table, col)")
		}
		return m.ExternalCall(a[0].AsString(), a[1].AsString(), a[2].AsString(), a[3].AsString())
	})
	return m
}

// Miner is the mining engine bound to one relational engine.
type Miner struct {
	eng       *sqlexec.Engine
	providers map[string]Provider
}

// RegisterProvider makes an external system reachable.
func (m *Miner) RegisterProvider(p Provider) {
	m.providers[p.Name()] = p
}

// BasketRules reads (basket, item) pairs from a table and mines rules.
func (m *Miner) BasketRules(table, basketCol, itemCol string, minSupport int, minConfidence float64) ([]value.Row, error) {
	res, err := m.eng.Query(fmt.Sprintf("SELECT %s, %s FROM %s", basketCol, itemCol, table))
	if err != nil {
		return nil, err
	}
	byBasket := map[string][]string{}
	var order []string
	for _, row := range res.Rows {
		b := row[0].AsString()
		if _, ok := byBasket[b]; !ok {
			order = append(order, b)
		}
		byBasket[b] = append(byBasket[b], row[1].AsString())
	}
	baskets := make([][]string, 0, len(order))
	for _, b := range order {
		baskets = append(baskets, byBasket[b])
	}
	var out []value.Row
	for _, r := range Rules(baskets, minSupport, minConfidence) {
		out = append(out, value.Row{
			value.String(strings.Join(r.Antecedent, "+")),
			value.String(r.Consequent),
			value.Int(int64(r.Support)),
			value.Float(r.Confidence),
			value.Float(r.Lift),
		})
	}
	return out, nil
}

// ExternalCall ships one numeric column to the provider and returns the
// procedure's primary output series as (name, idx, val) rows.
func (m *Miner) ExternalCall(provider, procedure, table, col string) ([]value.Row, error) {
	p, ok := m.providers[provider]
	if !ok {
		return nil, fmt.Errorf("mining: no provider %q", provider)
	}
	res, err := m.eng.Query(fmt.Sprintf("SELECT %s FROM %s", col, table))
	if err != nil {
		return nil, err
	}
	in := make([]float64, 0, len(res.Rows))
	for _, r := range res.Rows {
		in = append(in, r[0].AsFloat())
	}
	out, err := p.Call(procedure, map[string][]float64{"x": in})
	if err != nil {
		return nil, err
	}
	var rows []value.Row
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for i, v := range out[n] {
			rows = append(rows, value.Row{value.String(n), value.Int(int64(i)), value.Float(v)})
		}
	}
	return rows, nil
}
