package docstore

import (
	"fmt"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// KVStore is the pure key-value face of §II-H ("flexible data structures
// like the document model or key-value stores"): a thin NoSQL API whose
// data lives in an ordinary column-store table — so KV data participates
// in SQL, MVCC, the delta merge, durability and tiering like everything
// else, while applications get the familiar Get/Put/Delete/Scan surface.
type KVStore struct {
	eng   *sqlexec.Engine
	table string
}

// OpenKV creates (or reuses) the backing table and returns the store.
func OpenKV(eng *sqlexec.Engine, table string) (*KVStore, error) {
	if _, ok := eng.Cat.Table(table); !ok {
		if _, err := eng.Query(fmt.Sprintf("CREATE TABLE %s (k VARCHAR, v VARCHAR)", table)); err != nil {
			return nil, err
		}
	}
	entry, _ := eng.Cat.Table(table)
	if entry.Schema.ColIndex("k") < 0 || entry.Schema.ColIndex("v") < 0 {
		return nil, fmt.Errorf("docstore: table %q lacks k/v columns", table)
	}
	return &KVStore{eng: eng, table: table}, nil
}

// Put upserts a key.
func (s *KVStore) Put(key, val string) error {
	sess := s.eng.NewSession()
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		return err
	}
	if _, err := sess.Query(fmt.Sprintf("DELETE FROM %s WHERE k = ?", s.table), value.String(key)); err != nil {
		return err
	}
	if _, err := sess.Query(fmt.Sprintf("INSERT INTO %s VALUES (?, ?)", s.table), value.String(key), value.String(val)); err != nil {
		return err
	}
	return sess.Commit()
}

// Get reads a key.
func (s *KVStore) Get(key string) (string, bool, error) {
	r, err := s.eng.Query(fmt.Sprintf("SELECT v FROM %s WHERE k = ?", s.table), value.String(key))
	if err != nil {
		return "", false, err
	}
	if len(r.Rows) == 0 {
		return "", false, nil
	}
	return r.Rows[0][0].S, true, nil
}

// Delete removes a key; returns whether it existed.
func (s *KVStore) Delete(key string) (bool, error) {
	r, err := s.eng.Query(fmt.Sprintf("DELETE FROM %s WHERE k = ?", s.table), value.String(key))
	if err != nil {
		return false, err
	}
	return r.Rows[0][0].I > 0, nil
}

// Scan returns all pairs with the given key prefix, ordered by key.
func (s *KVStore) Scan(prefix string) (map[string]string, error) {
	// NOTE: '%' and '_' inside the prefix act as LIKE wildcards (the
	// dialect has no escape clause); keys should avoid them.
	r, err := s.eng.Query(fmt.Sprintf("SELECT k, v FROM %s WHERE k LIKE ? ORDER BY k", s.table),
		value.String(prefix+"%"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(r.Rows))
	for _, row := range r.Rows {
		out[row[0].S] = row[1].S
	}
	return out, nil
}

// Len counts live keys.
func (s *KVStore) Len() (int, error) {
	r, err := s.eng.Query(fmt.Sprintf("SELECT COUNT(*) FROM %s", s.table))
	if err != nil {
		return 0, err
	}
	return int(r.Rows[0][0].I), nil
}
