// Package docstore implements the NoSQL extensions of §II-H beyond the
// flexible tables already built into the relational engine: a JSON
// "document" column type queried through an embedded path language, and
// the materialized object index — a header–item–subitem business object
// stored as one JSON document acting as a join index over the relational
// tables (experiment E16).
package docstore

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

// PathGet evaluates a path like "$.customer.addresses[0].city" against a
// JSON document. The embedded-query mechanism: "documents themselves are
// queried by an XQuery like language which is embedded into the SQL
// statement".
func PathGet(doc string, path string) (any, error) {
	var root any
	if err := json.Unmarshal([]byte(doc), &root); err != nil {
		return nil, fmt.Errorf("docstore: invalid document: %w", err)
	}
	steps, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	cur := root
	for _, st := range steps {
		switch {
		case st.index >= 0:
			arr, ok := cur.([]any)
			if !ok || st.index >= len(arr) {
				return nil, nil
			}
			cur = arr[st.index]
		case st.wildcard:
			arr, ok := cur.([]any)
			if !ok {
				return nil, nil
			}
			cur = arr // wildcard only meaningful as last step or with field fan-out below
		default:
			obj, ok := cur.(map[string]any)
			if !ok {
				// Fan out over an array from a previous wildcard step.
				if arr, isArr := cur.([]any); isArr {
					var out []any
					for _, el := range arr {
						if m, ok := el.(map[string]any); ok {
							if v, ok := m[st.field]; ok {
								out = append(out, v)
							}
						}
					}
					cur = out
					continue
				}
				return nil, nil
			}
			v, ok := obj[st.field]
			if !ok {
				return nil, nil
			}
			cur = v
		}
	}
	return cur, nil
}

type pathStep struct {
	field    string
	index    int // -1 for field steps
	wildcard bool
}

func parsePath(path string) ([]pathStep, error) {
	p := strings.TrimSpace(path)
	if !strings.HasPrefix(p, "$") {
		return nil, fmt.Errorf("docstore: path must start with $")
	}
	p = p[1:]
	var steps []pathStep
	for len(p) > 0 {
		switch {
		case strings.HasPrefix(p, "."):
			p = p[1:]
			end := strings.IndexAny(p, ".[")
			if end < 0 {
				end = len(p)
			}
			if end == 0 {
				return nil, fmt.Errorf("docstore: empty field in path %q", path)
			}
			steps = append(steps, pathStep{field: p[:end], index: -1})
			p = p[end:]
		case strings.HasPrefix(p, "["):
			close := strings.IndexByte(p, ']')
			if close < 0 {
				return nil, fmt.Errorf("docstore: unclosed [ in path %q", path)
			}
			inner := p[1:close]
			p = p[close+1:]
			if inner == "*" {
				steps = append(steps, pathStep{index: -1, wildcard: true})
				continue
			}
			n, err := strconv.Atoi(inner)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("docstore: bad index %q", inner)
			}
			steps = append(steps, pathStep{index: n})
		default:
			return nil, fmt.Errorf("docstore: unexpected %q in path", p)
		}
	}
	return steps, nil
}

func toValue(v any) value.Value {
	switch x := v.(type) {
	case nil:
		return value.Null
	case bool:
		return value.Bool(x)
	case float64:
		if x == float64(int64(x)) {
			return value.Int(int64(x))
		}
		return value.Float(x)
	case string:
		return value.String(x)
	default:
		b, _ := json.Marshal(x)
		return value.String(string(b))
	}
}

// Attach registers the document functions with a relational engine:
//
//	JSON_VALUE(doc, '$.a.b[0]')  → scalar (objects/arrays come back as JSON text)
//	JSON_EXISTS(doc, path)       → boolean
//	JSON_LENGTH(doc, path)       → array/object length
//	JSON_SET(doc, path, value)   → updated document (top-level fields)
func Attach(eng *sqlexec.Engine) *Objects {
	eng.Reg.RegisterScalar("JSON_VALUE", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, fmt.Errorf("docstore: JSON_VALUE(doc, path)")
		}
		if a[0].IsNull() {
			return value.Null, nil
		}
		v, err := PathGet(a[0].AsString(), a[1].AsString())
		if err != nil {
			return value.Null, err
		}
		return toValue(v), nil
	})
	eng.Reg.RegisterScalar("JSON_EXISTS", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, fmt.Errorf("docstore: JSON_EXISTS(doc, path)")
		}
		if a[0].IsNull() {
			return value.Bool(false), nil
		}
		v, err := PathGet(a[0].AsString(), a[1].AsString())
		if err != nil {
			return value.Bool(false), nil
		}
		return value.Bool(v != nil), nil
	})
	eng.Reg.RegisterScalar("JSON_LENGTH", func(a []value.Value) (value.Value, error) {
		if len(a) != 2 {
			return value.Null, fmt.Errorf("docstore: JSON_LENGTH(doc, path)")
		}
		v, err := PathGet(a[0].AsString(), a[1].AsString())
		if err != nil || v == nil {
			return value.Null, err
		}
		switch x := v.(type) {
		case []any:
			return value.Int(int64(len(x))), nil
		case map[string]any:
			return value.Int(int64(len(x))), nil
		case string:
			return value.Int(int64(len(x))), nil
		default:
			return value.Null, nil
		}
	})
	eng.Reg.RegisterScalar("JSON_SET", func(a []value.Value) (value.Value, error) {
		if len(a) != 3 {
			return value.Null, fmt.Errorf("docstore: JSON_SET(doc, field, value)")
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(a[0].AsString()), &obj); err != nil {
			return value.Null, err
		}
		field := strings.TrimPrefix(a[1].AsString(), "$.")
		switch a[2].K {
		case value.KindInt:
			obj[field] = a[2].I
		case value.KindFloat:
			obj[field] = a[2].F
		case value.KindBool:
			obj[field] = a[2].AsBool()
		default:
			obj[field] = a[2].AsString()
		}
		b, err := json.Marshal(obj)
		if err != nil {
			return value.Null, err
		}
		return value.String(string(b)), nil
	})
	return &Objects{eng: eng}
}

// Objects maintains materialized business-object indexes: a
// header–item–subitem structure with 1:N cardinalities stored as one JSON
// document per header key, "a kind of materialized index on top of the
// relational data" (§II-H).
type Objects struct {
	eng *sqlexec.Engine
}

// ObjectDef describes the three-level shape.
type ObjectDef struct {
	Name string // index table name: (k VARCHAR, doc VARCHAR)

	HeaderTable string
	HeaderKey   string

	ItemTable string
	ItemFK    string // references header key
	ItemKey   string

	SubitemTable string
	SubitemFK    string // references item key
}

// Materialize (re)builds the object index table from the relational
// tables with three scans and in-memory grouping (not one join per
// object). Returns the number of objects written.
func (o *Objects) Materialize(def ObjectDef) (int, error) {
	o.eng.Query(fmt.Sprintf("DROP TABLE IF EXISTS %s", def.Name))
	if _, err := o.eng.Query(fmt.Sprintf("CREATE TABLE %s (k VARCHAR, doc VARCHAR)", def.Name)); err != nil {
		return 0, err
	}
	hentry, ok := o.eng.Cat.Table(def.HeaderTable)
	if !ok {
		return 0, fmt.Errorf("docstore: no table %q", def.HeaderTable)
	}
	ientry, ok := o.eng.Cat.Table(def.ItemTable)
	if !ok {
		return 0, fmt.Errorf("docstore: no table %q", def.ItemTable)
	}
	hki := hentry.Schema.ColIndex(def.HeaderKey)
	ifki := ientry.Schema.ColIndex(def.ItemFK)
	iki := ientry.Schema.ColIndex(def.ItemKey)
	if hki < 0 || ifki < 0 || iki < 0 {
		return 0, fmt.Errorf("docstore: key columns missing in object definition")
	}

	// Scan subitems once, grouped by their item foreign key.
	subsByItem := map[string][]any{}
	if def.SubitemTable != "" {
		sentry, ok := o.eng.Cat.Table(def.SubitemTable)
		if !ok {
			return 0, fmt.Errorf("docstore: no table %q", def.SubitemTable)
		}
		sfki := sentry.Schema.ColIndex(def.SubitemFK)
		if sfki < 0 {
			return 0, fmt.Errorf("docstore: subitem key %q missing", def.SubitemFK)
		}
		sr, err := o.eng.Query(fmt.Sprintf("SELECT * FROM %s", def.SubitemTable))
		if err != nil {
			return 0, err
		}
		names := sentry.Schema.Names()
		for _, row := range sr.Rows {
			fk := row[sfki].AsString()
			subsByItem[fk] = append(subsByItem[fk], rowToMap(names, row))
		}
	}

	// Scan items once, grouped by header key, subitems attached.
	itemsByHeader := map[string][]any{}
	ir, err := o.eng.Query(fmt.Sprintf("SELECT * FROM %s", def.ItemTable))
	if err != nil {
		return 0, err
	}
	inames := ientry.Schema.Names()
	for _, row := range ir.Rows {
		item := rowToMap(inames, row)
		if def.SubitemTable != "" {
			item["subitems"] = subsByItem[row[iki].AsString()]
		}
		itemsByHeader[row[ifki].AsString()] = append(itemsByHeader[row[ifki].AsString()], item)
	}

	// Scan headers once, emit documents.
	headers, err := o.eng.Query(fmt.Sprintf("SELECT * FROM %s", def.HeaderTable))
	if err != nil {
		return 0, err
	}
	hnames := hentry.Schema.Names()
	n := 0
	sess := o.eng.NewSession()
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		return 0, err
	}
	for _, h := range headers.Rows {
		key := h[hki].AsString()
		obj := rowToMap(hnames, h)
		obj["items"] = itemsByHeader[key]
		doc, err := json.Marshal(obj)
		if err != nil {
			return 0, err
		}
		if _, err := sess.Query(fmt.Sprintf("INSERT INTO %s VALUES (?, ?)", def.Name),
			value.String(key), value.String(string(doc))); err != nil {
			return 0, err
		}
		n++
	}
	return n, sess.Commit()
}

// GetIndexed retrieves an object from the materialized index — one lookup
// instead of three joins.
func (o *Objects) GetIndexed(def ObjectDef, key string) (string, error) {
	r, err := o.eng.Query(fmt.Sprintf("SELECT doc FROM %s WHERE k = ?", def.Name), value.String(key))
	if err != nil {
		return "", err
	}
	if len(r.Rows) == 0 {
		return "", fmt.Errorf("docstore: no object %q", key)
	}
	return r.Rows[0][0].S, nil
}

// GetAssembled is the relational baseline: assemble the object from the
// three tables at read time.
func (o *Objects) GetAssembled(def ObjectDef, key string) (string, error) {
	return o.assemble(def, key)
}

func (o *Objects) assemble(def ObjectDef, key string) (string, error) {
	hentry, ok := o.eng.Cat.Table(def.HeaderTable)
	if !ok {
		return "", fmt.Errorf("docstore: no table %q", def.HeaderTable)
	}
	hr, err := o.eng.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s = ?", def.HeaderTable, def.HeaderKey), value.String(key))
	if err != nil {
		return "", err
	}
	if len(hr.Rows) == 0 {
		return "", fmt.Errorf("docstore: no header %q", key)
	}
	obj := rowToMap(hentry.Schema.Names(), hr.Rows[0])

	ientry, ok := o.eng.Cat.Table(def.ItemTable)
	if !ok {
		return "", fmt.Errorf("docstore: no table %q", def.ItemTable)
	}
	ir, err := o.eng.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s = ?", def.ItemTable, def.ItemFK), value.String(key))
	if err != nil {
		return "", err
	}
	iki := ientry.Schema.ColIndex(def.ItemKey)
	var items []any
	for _, row := range ir.Rows {
		item := rowToMap(ientry.Schema.Names(), row)
		if def.SubitemTable != "" {
			sentry, ok := o.eng.Cat.Table(def.SubitemTable)
			if !ok {
				return "", fmt.Errorf("docstore: no table %q", def.SubitemTable)
			}
			sr, err := o.eng.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s = ?", def.SubitemTable, def.SubitemFK), row[iki])
			if err != nil {
				return "", err
			}
			var subs []any
			for _, srow := range sr.Rows {
				subs = append(subs, rowToMap(sentry.Schema.Names(), srow))
			}
			item["subitems"] = subs
		}
		items = append(items, item)
	}
	obj["items"] = items
	b, err := json.Marshal(obj)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func rowToMap(names []string, row value.Row) map[string]any {
	m := make(map[string]any, len(names))
	for i, n := range names {
		if i >= len(row) {
			break
		}
		v := row[i]
		switch v.K {
		case value.KindNull:
			m[n] = nil
		case value.KindInt, value.KindTime:
			m[n] = v.I
		case value.KindFloat:
			m[n] = v.F
		case value.KindBool:
			m[n] = v.AsBool()
		default:
			m[n] = v.S
		}
	}
	return m
}
