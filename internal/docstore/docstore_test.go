package docstore

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/sqlexec"
	"repro/internal/value"
)

const sampleDoc = `{
  "order": "SO-1",
  "customer": {"name": "Acme", "city": "Berlin"},
  "items": [
    {"sku": "soap", "qty": 10},
    {"sku": "towel", "qty": 3}
  ],
  "paid": true,
  "total": 129.5
}`

func TestPathGet(t *testing.T) {
	cases := []struct {
		path string
		want any
	}{
		{"$.order", "SO-1"},
		{"$.customer.city", "Berlin"},
		{"$.items[0].sku", "soap"},
		{"$.items[1].qty", float64(3)},
		{"$.paid", true},
		{"$.total", 129.5},
		{"$.missing", nil},
		{"$.items[9].sku", nil},
		{"$.customer.city.deeper", nil},
	}
	for _, c := range cases {
		got, err := PathGet(sampleDoc, c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if got != c.want {
			t.Fatalf("%s: got %v want %v", c.path, got, c.want)
		}
	}
}

func TestPathWildcard(t *testing.T) {
	got, err := PathGet(sampleDoc, "$.items[*].sku")
	if err != nil {
		t.Fatal(err)
	}
	arr, ok := got.([]any)
	if !ok || len(arr) != 2 || arr[0] != "soap" || arr[1] != "towel" {
		t.Fatalf("got %v", got)
	}
}

func TestPathErrors(t *testing.T) {
	if _, err := PathGet("{not json", "$.a"); err == nil {
		t.Fatal("invalid doc accepted")
	}
	for _, p := range []string{"a.b", "$.items[x]", "$.items[", "$..", "$x"} {
		if _, err := PathGet(sampleDoc, p); err == nil {
			t.Fatalf("path %q accepted", p)
		}
	}
}

func TestSQLJSONFunctions(t *testing.T) {
	eng := sqlexec.NewEngine()
	Attach(eng)
	eng.MustQuery(`CREATE TABLE orders_doc (id VARCHAR, doc DOCUMENT)`)
	eng.MustQuery(`INSERT INTO orders_doc VALUES ('SO-1', ?)`, value.String(sampleDoc))
	eng.MustQuery(`INSERT INTO orders_doc VALUES ('SO-2', '{"customer":{"city":"Seoul"},"items":[],"total":5}')`)

	// Embedded path query inside SQL (§II-H).
	r := eng.MustQuery(`SELECT id FROM orders_doc WHERE JSON_VALUE(doc, '$.customer.city') = 'Berlin'`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "SO-1" {
		t.Fatalf("rows=%v", r.Rows)
	}
	r = eng.MustQuery(`SELECT JSON_LENGTH(doc, '$.items') FROM orders_doc ORDER BY id`)
	if r.Rows[0][0].I != 2 || r.Rows[1][0].I != 0 {
		t.Fatalf("lengths=%v", r.Rows)
	}
	r = eng.MustQuery(`SELECT id FROM orders_doc WHERE JSON_EXISTS(doc, '$.paid')`)
	if len(r.Rows) != 1 {
		t.Fatalf("exists rows=%v", r.Rows)
	}
	// Aggregate over document values combined with relational predicates.
	r = eng.MustQuery(`SELECT SUM(JSON_VALUE(doc, '$.total')) FROM orders_doc`)
	if r.Rows[0][0].AsFloat() != 134.5 {
		t.Fatalf("sum=%v", r.Rows[0][0])
	}
}

func TestJSONSet(t *testing.T) {
	eng := sqlexec.NewEngine()
	Attach(eng)
	r := eng.MustQuery(`SELECT JSON_SET('{"a":1}', '$.b', 'x')`)
	var m map[string]any
	if err := json.Unmarshal([]byte(r.Rows[0][0].S), &m); err != nil {
		t.Fatal(err)
	}
	if m["b"] != "x" || m["a"] != float64(1) {
		t.Fatalf("doc=%v", m)
	}
}

func newObjectTables(t *testing.T) (*sqlexec.Engine, *Objects, ObjectDef) {
	t.Helper()
	eng := sqlexec.NewEngine()
	o := Attach(eng)
	eng.MustQuery(`CREATE TABLE so_header (so VARCHAR, customer VARCHAR, status VARCHAR)`)
	eng.MustQuery(`CREATE TABLE so_item (item_id VARCHAR, so VARCHAR, sku VARCHAR, qty INT)`)
	eng.MustQuery(`CREATE TABLE so_subitem (sub_id VARCHAR, item_id VARCHAR, note VARCHAR)`)
	for h := 0; h < 3; h++ {
		so := fmt.Sprintf("SO-%d", h)
		eng.MustQuery(fmt.Sprintf(`INSERT INTO so_header VALUES ('%s', 'cust%d', 'OPEN')`, so, h))
		for i := 0; i < 2; i++ {
			item := fmt.Sprintf("%s-I%d", so, i)
			eng.MustQuery(fmt.Sprintf(`INSERT INTO so_item VALUES ('%s', '%s', 'sku%d', %d)`, item, so, i, i+1))
			eng.MustQuery(fmt.Sprintf(`INSERT INTO so_subitem VALUES ('%s-S0', '%s', 'note')`, item, item))
		}
	}
	def := ObjectDef{
		Name:        "so_objects",
		HeaderTable: "so_header", HeaderKey: "so",
		ItemTable: "so_item", ItemFK: "so", ItemKey: "item_id",
		SubitemTable: "so_subitem", SubitemFK: "item_id",
	}
	return eng, o, def
}

func TestObjectIndexMaterializeAndGet(t *testing.T) {
	eng, o, def := newObjectTables(t)
	n, err := o.Materialize(def)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	doc, err := o.GetIndexed(def, "SO-1")
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(doc), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["customer"] != "cust1" {
		t.Fatalf("customer=%v", obj["customer"])
	}
	items := obj["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("items=%v", items)
	}
	subs := items[0].(map[string]any)["subitems"].([]any)
	if len(subs) != 1 {
		t.Fatalf("subs=%v", subs)
	}
	// The index is queryable through the JSON functions too.
	r := eng.MustQuery(`SELECT k FROM so_objects WHERE JSON_VALUE(doc, '$.items[0].sku') = 'sku0' ORDER BY k`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestIndexedMatchesAssembled(t *testing.T) {
	_, o, def := newObjectTables(t)
	if _, err := o.Materialize(def); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"SO-0", "SO-1", "SO-2"} {
		a, err := o.GetIndexed(def, key)
		if err != nil {
			t.Fatal(err)
		}
		b, err := o.GetAssembled(def, key)
		if err != nil {
			t.Fatal(err)
		}
		var am, bm map[string]any
		json.Unmarshal([]byte(a), &am)
		json.Unmarshal([]byte(b), &bm)
		if fmt.Sprint(am) != fmt.Sprint(bm) {
			t.Fatalf("%s: indexed and assembled differ\n%v\n%v", key, am, bm)
		}
	}
}

func TestObjectErrors(t *testing.T) {
	_, o, def := newObjectTables(t)
	o.Materialize(def)
	if _, err := o.GetIndexed(def, "SO-99"); err == nil {
		t.Fatal("missing object accepted")
	}
	bad := def
	bad.HeaderTable = "ghost"
	if _, err := o.Materialize(bad); err == nil {
		t.Fatal("missing header table accepted")
	}
}

func TestKVStoreBasics(t *testing.T) {
	eng := sqlexec.NewEngine()
	kv, err := OpenKV(eng, "kvdata")
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("user:1", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("user:2", "bob"); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := kv.Get("user:1")
	if !ok || v != "alice" {
		t.Fatalf("get=%q ok=%v", v, ok)
	}
	// Upsert replaces.
	kv.Put("user:1", "alicia")
	v, _, _ = kv.Get("user:1")
	if v != "alicia" {
		t.Fatalf("upsert=%q", v)
	}
	if n, _ := kv.Len(); n != 2 {
		t.Fatalf("len=%d", n)
	}
	// Prefix scan.
	kv.Put("cfg:x", "1")
	m, _ := kv.Scan("user:")
	if len(m) != 2 || m["user:2"] != "bob" {
		t.Fatalf("scan=%v", m)
	}
	// Delete.
	if existed, _ := kv.Delete("user:2"); !existed {
		t.Fatal("delete missed")
	}
	if existed, _ := kv.Delete("user:2"); existed {
		t.Fatal("double delete")
	}
	if _, ok, _ := kv.Get("user:2"); ok {
		t.Fatal("deleted key visible")
	}
}

func TestKVSharesSQLWorld(t *testing.T) {
	// The KV face and SQL see the same data: §II-H's point that NoSQL
	// flexibility integrates into the standard system.
	eng := sqlexec.NewEngine()
	kv, _ := OpenKV(eng, "kvdata")
	kv.Put("sensor:DISP-1", "low")
	r := eng.MustQuery(`SELECT v FROM kvdata WHERE k = 'sensor:DISP-1'`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "low" {
		t.Fatalf("rows=%v", r.Rows)
	}
	eng.MustQuery(`UPDATE kvdata SET v = 'ok' WHERE k = 'sensor:DISP-1'`)
	v, _, _ := kv.Get("sensor:DISP-1")
	if v != "ok" {
		t.Fatalf("kv read after SQL update: %q", v)
	}
	// Reopen over the existing table.
	if _, err := OpenKV(eng, "kvdata"); err != nil {
		t.Fatal(err)
	}
	// Wrong shape rejected.
	eng.MustQuery(`CREATE TABLE notkv (a INT)`)
	if _, err := OpenKV(eng, "notkv"); err == nil {
		t.Fatal("bad table accepted")
	}
}
