package aging

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sqlexec"
)

var now = time.Date(2015, 4, 13, 0, 0, 0, 0, time.UTC)

func micros(t time.Time) int64 { return t.UnixMicro() }

// newOrderWorld builds orders and invoices with a mix of hot and cold
// rows, mirroring the §III example.
func newOrderWorld(t *testing.T) (*sqlexec.Engine, *Manager) {
	t.Helper()
	eng := sqlexec.NewEngine()
	m := Attach(eng)
	m.ColdReadPenaltyMicros = 0 // keep unit tests fast; benches set it
	eng.MustQuery(`CREATE TABLE orders (id VARCHAR, status VARCHAR, closed INT, total DOUBLE)`)
	eng.MustQuery(`CREATE TABLE invoices (id VARCHAR, order_id VARCHAR, status VARCHAR, paid INT, amount DOUBLE)`)

	oldDate := micros(now.AddDate(-1, -2, 0)) // last year, > 3 months ago
	recent := micros(now.AddDate(0, -1, 0))   // this year, 1 month ago
	type o struct {
		id, status string
		closed     int64
	}
	orders := []o{
		{"O1", "CLOSED", oldDate}, // ages
		{"O2", "CLOSED", recent},  // too recent
		{"O3", "OPEN", oldDate},   // not closed
		{"O4", "CLOSED", oldDate}, // ages
		{"O5", "OPEN", recent},
	}
	for _, x := range orders {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO orders VALUES ('%s', '%s', %d, 100)`, x.id, x.status, x.closed))
	}
	invoices := []struct {
		id, order, status string
		paid              int64
	}{
		{"I1", "O1", "PAID", oldDate}, // parent ages -> ages
		{"I2", "O2", "PAID", oldDate}, // parent stays hot -> must stay hot
		{"I3", "O3", "OPEN", oldDate}, // not paid
		{"I4", "O4", "PAID", oldDate}, // ages
	}
	for _, x := range invoices {
		eng.MustQuery(fmt.Sprintf(`INSERT INTO invoices VALUES ('%s', '%s', '%s', %d, 50)`, x.id, x.order, x.status, x.paid))
	}
	if err := m.DefineRule(Rule{
		Table: "orders", StatusCol: "status", ClosedStatus: "CLOSED",
		DateCol: "closed", MinAge: 90 * 24 * time.Hour, NotCurrentYear: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.DefineRule(Rule{
		Table: "invoices", StatusCol: "status", ClosedStatus: "PAID",
		DateCol: "paid", MinAge: 90 * 24 * time.Hour, NotCurrentYear: true,
		DependsOn: &Dependency{ParentTable: "orders", ParentKeyCol: "id", FKCol: "order_id"},
	}); err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestRunAgingMovesOnlyColdRows(t *testing.T) {
	eng, m := newOrderWorld(t)
	moved, err := m.RunAging(now)
	if err != nil {
		t.Fatal(err)
	}
	if moved["orders"] != 2 {
		t.Fatalf("orders moved=%d", moved["orders"])
	}
	// I1 and I4 age (parents O1/O4 aged); I2's parent is hot, so the
	// dependency keeps it hot even though it matches by itself.
	if moved["invoices"] != 2 {
		t.Fatalf("invoices moved=%d", moved["invoices"])
	}
	// Data is still complete through the logical table.
	r := eng.MustQuery(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("total=%v", r.Rows[0][0])
	}
	r = eng.MustQuery(`SELECT COUNT(*) FROM invoices`)
	if r.Rows[0][0].I != 4 {
		t.Fatalf("total=%v", r.Rows[0][0])
	}
}

func TestSemanticPruningOnStatus(t *testing.T) {
	eng, m := newOrderWorld(t)
	m.RunAging(now)
	// "All open orders": the rule guarantees cold rows are CLOSED, so the
	// cold partition is pruned.
	r := eng.MustQuery(`SELECT COUNT(*) FROM orders WHERE status = 'OPEN'`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("open=%v", r.Rows[0][0])
	}
	if r.Stats.PartitionsPruned != 1 || r.Stats.PartitionsScanned != 1 {
		t.Fatalf("stats=%+v", r.Stats)
	}
	// A query for CLOSED orders must still scan the cold partition.
	r = eng.MustQuery(`SELECT COUNT(*) FROM orders WHERE status = 'CLOSED'`)
	if r.Rows[0][0].I != 3 || r.Stats.PartitionsScanned != 2 {
		t.Fatalf("closed=%v stats=%+v", r.Rows[0][0], r.Stats)
	}
}

func TestSemanticPruningOnDate(t *testing.T) {
	eng, m := newOrderWorld(t)
	m.RunAging(now)
	cut := micros(now.AddDate(0, -2, 0))
	r := eng.MustQuery(fmt.Sprintf(`SELECT COUNT(*) FROM orders WHERE closed > %d`, cut))
	if r.Stats.PartitionsPruned != 1 {
		t.Fatalf("date pruning failed: %+v", r.Stats)
	}
}

func TestStatsPrunerCannotPruneStatus(t *testing.T) {
	eng, m := newOrderWorld(t)
	m.RunAging(now)
	eng.Prune = StatsPrune(eng) // swap in the baseline
	r := eng.MustQuery(`SELECT COUNT(*) FROM orders WHERE status = 'OPEN'`)
	if r.Stats.PartitionsScanned != 2 {
		t.Fatalf("stats-based pruner should scan both partitions: %+v", r.Stats)
	}
	// It can prune date ranges though.
	cut := micros(now.AddDate(0, -2, 0))
	r = eng.MustQuery(fmt.Sprintf(`SELECT COUNT(*) FROM orders WHERE closed > %d`, cut))
	if r.Stats.PartitionsScanned != 1 {
		t.Fatalf("stats-based date pruning failed: %+v", r.Stats)
	}
}

func TestJoinSplitHotOnly(t *testing.T) {
	eng, m := newOrderWorld(t)
	m.RunAging(now)
	if !m.CanRestrictJoinToHot("orders", "invoices") {
		t.Fatal("dependency not detected")
	}
	if m.CanRestrictJoinToHot("invoices", "orders") {
		t.Fatal("reverse dependency claimed")
	}
	// "Open orders and their invoices": with the coupling rule, both
	// sides need only hot partitions.
	var full, hot *sqlexec.Result
	var err error
	full, err = eng.Query(`SELECT o.id, i.id FROM orders o JOIN invoices i ON i.order_id = o.id WHERE o.status = 'OPEN'`)
	if err != nil {
		t.Fatal(err)
	}
	err = m.HotOnly([]string{"orders", "invoices"}, func() error {
		hot, err = eng.Query(`SELECT o.id, i.id FROM orders o JOIN invoices i ON i.order_id = o.id WHERE o.status = 'OPEN'`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != len(hot.Rows) || len(hot.Rows) != 1 {
		t.Fatalf("full=%d hot=%d", len(full.Rows), len(hot.Rows))
	}
	if hot.Stats.PartitionsScanned >= full.Stats.PartitionsScanned {
		t.Fatalf("hot-only did not reduce scanning: %d vs %d", hot.Stats.PartitionsScanned, full.Stats.PartitionsScanned)
	}
}

func TestCycleRejected(t *testing.T) {
	eng := sqlexec.NewEngine()
	m := Attach(eng)
	eng.MustQuery(`CREATE TABLE a (id VARCHAR, status VARCHAR, d INT, fk VARCHAR)`)
	eng.MustQuery(`CREATE TABLE b (id VARCHAR, status VARCHAR, d INT, fk VARCHAR)`)
	if err := m.DefineRule(Rule{Table: "a", StatusCol: "status", ClosedStatus: "X", DateCol: "d",
		DependsOn: &Dependency{ParentTable: "b", ParentKeyCol: "id", FKCol: "fk"}}); err != nil {
		t.Fatal(err)
	}
	err := m.DefineRule(Rule{Table: "b", StatusCol: "status", ClosedStatus: "X", DateCol: "d",
		DependsOn: &Dependency{ParentTable: "a", ParentKeyCol: "id", FKCol: "fk"}})
	if err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestRuleValidation(t *testing.T) {
	eng := sqlexec.NewEngine()
	m := Attach(eng)
	if err := m.DefineRule(Rule{Table: "ghost", StatusCol: "s", DateCol: "d"}); err == nil {
		t.Fatal("missing table accepted")
	}
	eng.MustQuery(`CREATE TABLE t (id VARCHAR, status VARCHAR, d INT)`)
	if err := m.DefineRule(Rule{Table: "t", StatusCol: "nope", DateCol: "d"}); err == nil {
		t.Fatal("missing column accepted")
	}
	if err := m.DefineRule(Rule{Table: "t", StatusCol: "status", DateCol: "d",
		DependsOn: &Dependency{ParentTable: "ghost", ParentKeyCol: "x", FKCol: "id"}}); err == nil {
		t.Fatal("missing parent accepted")
	}
	// Rule lands in catalog metadata.
	if err := m.DefineRule(Rule{Table: "t", StatusCol: "status", ClosedStatus: "DONE", DateCol: "d", MinAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if meta, ok := eng.Cat.Metadata("t", "aging_rule"); !ok || meta == "" {
		t.Fatal("rule not stored in catalog metadata")
	}
}

func TestRepeatedAgingIsIdempotent(t *testing.T) {
	eng, m := newOrderWorld(t)
	m.RunAging(now)
	moved, err := m.RunAging(now)
	if err != nil {
		t.Fatal(err)
	}
	if moved["orders"] != 0 || moved["invoices"] != 0 {
		t.Fatalf("second run moved rows: %v", moved)
	}
	r := eng.MustQuery(`SELECT COUNT(*) FROM orders`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("rows duplicated: %v", r.Rows[0][0])
	}
}

func TestNewlyColdRowsAgeNextRun(t *testing.T) {
	eng, m := newOrderWorld(t)
	m.RunAging(now)
	// O2 becomes old enough next year.
	later := now.AddDate(1, 0, 0)
	moved, err := m.RunAging(later)
	if err != nil {
		t.Fatal(err)
	}
	if moved["orders"] != 1 { // O2
		t.Fatalf("moved=%v", moved)
	}
	// Its invoice I2 now follows.
	if moved["invoices"] != 1 {
		t.Fatalf("invoice follow-up=%v", moved)
	}
	r := eng.MustQuery(`SELECT COUNT(*) FROM orders WHERE status = 'OPEN'`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("open=%v", r.Rows[0][0])
	}
}
