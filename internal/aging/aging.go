// Package aging implements the semantic data-aging mechanism of §III:
// applications define aging rules ("age a sales order if it is closed,
// the closing date is older than 3 months, and it is not from this
// year"), the engine stores them in catalog metadata, moves matching rows
// into cold partitions, and — because the rules carry business meaning —
// prunes partitions far more aggressively than any statistics-based
// approach. Dependencies between objects ("an invoice ages only when its
// order is aged") form a checked acyclic graph and enable the join-split
// optimization the paper walks through. Experiment E6 measures all of it.
package aging

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/columnstore"
	"repro/internal/extstore"
	"repro/internal/sqlexec"
	"repro/internal/txn"
	"repro/internal/value"
)

// Rule is one application-defined aging rule.
type Rule struct {
	Table string

	// A row is cold when StatusCol equals ClosedStatus ...
	StatusCol    string
	ClosedStatus string
	// ... and DateCol is at least MinAge old ...
	DateCol string
	MinAge  time.Duration
	// ... and (optionally) the date is not from the current year.
	NotCurrentYear bool

	// DependsOn couples this object's aging to a parent object: a row
	// ages only when the referenced parent row is already aged.
	DependsOn *Dependency
}

// Dependency references the parent object of a coupled aging rule.
type Dependency struct {
	ParentTable  string
	ParentKeyCol string
	FKCol        string
}

// coldMeta is what the pruner knows about one cold partition.
type coldMeta struct {
	rule      Rule
	maxDate   int64 // every row in the partition has DateCol <= maxDate
	partition *catalog.Partition
}

// Manager owns the rules, the cold partitions, and the semantic pruner.
type Manager struct {
	mu      sync.Mutex
	eng     *sqlexec.Engine
	rules   map[string]Rule
	cold    map[string]*coldMeta
	hotOnly map[string]bool
	// ColdReadPenaltyMicros is charged per cold-partition scan to model
	// extended-storage access latency (Figure 1's tiers).
	ColdReadPenaltyMicros int

	// Warm, when set, makes rule evaluation the demote policy: after each
	// aging run the cold partition is paged out to the extended store, so
	// aged rows actually leave memory instead of staying fully resident.
	Warm *extstore.Store
}

// Attach creates the aging manager and installs its pruner into the
// engine.
func Attach(eng *sqlexec.Engine) *Manager {
	m := &Manager{
		eng:     eng,
		rules:   map[string]Rule{},
		cold:    map[string]*coldMeta{},
		hotOnly: map[string]bool{},

		ColdReadPenaltyMicros: 200,
	}
	eng.Prune = m.Prune
	return m
}

// DefineRule validates and stores a rule; the serialized form lands in
// catalog metadata, making aging semantics part of the database (§III).
func (m *Manager) DefineRule(r Rule) error {
	entry, ok := m.eng.Cat.Table(r.Table)
	if !ok {
		return fmt.Errorf("aging: unknown table %q", r.Table)
	}
	for _, c := range []string{r.StatusCol, r.DateCol} {
		if entry.Schema.ColIndex(c) < 0 {
			return fmt.Errorf("aging: column %q not in %s", c, r.Table)
		}
	}
	if r.DependsOn != nil {
		parent, ok := m.eng.Cat.Table(r.DependsOn.ParentTable)
		if !ok {
			return fmt.Errorf("aging: unknown parent table %q", r.DependsOn.ParentTable)
		}
		if parent.Schema.ColIndex(r.DependsOn.ParentKeyCol) < 0 {
			return fmt.Errorf("aging: parent key %q not in %s", r.DependsOn.ParentKeyCol, r.DependsOn.ParentTable)
		}
		if entry.Schema.ColIndex(r.DependsOn.FKCol) < 0 {
			return fmt.Errorf("aging: foreign key %q not in %s", r.DependsOn.FKCol, r.Table)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules[r.Table] = r
	if err := m.checkAcyclic(); err != nil {
		delete(m.rules, r.Table)
		return err
	}
	blob, _ := json.Marshal(struct {
		Status, Closed, Date string
		MinAgeMicros         int64
		NotCurrentYear       bool
	}{r.StatusCol, r.ClosedStatus, r.DateCol, int64(r.MinAge / time.Microsecond), r.NotCurrentYear})
	return m.eng.Cat.SetMetadata(r.Table, "aging_rule", string(blob))
}

// checkAcyclic verifies the dependency graph has no cycles ("there is no
// cycle in the dependency graph"). Caller holds m.mu.
func (m *Manager) checkAcyclic() error {
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(t string) error
	visit = func(t string) error {
		switch state[t] {
		case 1:
			return fmt.Errorf("aging: dependency cycle through %q", t)
		case 2:
			return nil
		}
		state[t] = 1
		if r, ok := m.rules[t]; ok && r.DependsOn != nil {
			if err := visit(r.DependsOn.ParentTable); err != nil {
				return err
			}
		}
		state[t] = 2
		return nil
	}
	tables := make([]string, 0, len(m.rules))
	for t := range m.rules {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		if err := visit(t); err != nil {
			return err
		}
	}
	return nil
}

// agingOrder returns rule tables parents-first. Caller holds m.mu.
func (m *Manager) agingOrder() []string {
	var order []string
	state := map[string]int{}
	var visit func(t string)
	visit = func(t string) {
		if state[t] != 0 {
			return
		}
		state[t] = 1
		if r, ok := m.rules[t]; ok && r.DependsOn != nil {
			visit(r.DependsOn.ParentTable)
		}
		order = append(order, t)
	}
	tables := make([]string, 0, len(m.rules))
	for t := range m.rules {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		visit(t)
	}
	var ruled []string
	for _, t := range order {
		if _, ok := m.rules[t]; ok {
			ruled = append(ruled, t)
		}
	}
	return ruled
}

// RunAging applies every rule at time now, moving cold rows from hot
// partitions into the table's cold partition. Returns rows moved per
// table.
func (m *Manager) RunAging(now time.Time) (map[string]int, error) {
	m.mu.Lock()
	order := m.agingOrder()
	m.mu.Unlock()

	moved := map[string]int{}
	for _, table := range order {
		n, err := m.ageTable(table, now)
		if err != nil {
			return moved, err
		}
		moved[table] = n
	}
	return moved, nil
}

// demoteCold pages the table's cold partition out to the extended store
// and reports its footprint. Cold-partition accounting is in bytes of
// encoded size — not row counts — so E6 and the tiering experiment E21
// share one memory-footprint metric.
func (m *Manager) demoteCold(table string, c *coldMeta) error {
	if m.Warm != nil && c.partition.Table.NumRows() > 0 {
		if err := m.Warm.Demote(c.partition, m.eng.Mgr.MinActiveTS()); err != nil {
			return fmt.Errorf("aging: demote %s: %w", table, err)
		}
	}
	if m.eng.Obs != nil {
		m.eng.Obs.Gauge("aging_cold_bytes", "table="+table).Set(float64(c.partition.Table.Bytes()))
	}
	return nil
}

func (m *Manager) ageTable(table string, now time.Time) (int, error) {
	m.mu.Lock()
	rule := m.rules[table]
	m.mu.Unlock()

	entry, ok := m.eng.Cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("aging: table %q dropped", table)
	}
	cold, err := m.coldPartition(entry, rule)
	if err != nil {
		return 0, err
	}

	si := entry.Schema.ColIndex(rule.StatusCol)
	di := entry.Schema.ColIndex(rule.DateCol)
	cutoff := now.Add(-rule.MinAge).UnixMicro()
	curYear := now.UTC().Year()

	// Parent aged-key set for dependency-coupled rules.
	var agedParents map[string]bool
	var fki int
	if rule.DependsOn != nil {
		agedParents = m.agedKeySet(rule.DependsOn.ParentTable, rule.DependsOn.ParentKeyCol)
		fki = entry.Schema.ColIndex(rule.DependsOn.FKCol)
	}

	isCold := func(row value.Row) bool {
		if row[si].AsString() != rule.ClosedStatus {
			return false
		}
		d := row[di].AsInt()
		if d > cutoff {
			return false
		}
		if rule.NotCurrentYear && time.UnixMicro(d).UTC().Year() == curYear {
			return false
		}
		if agedParents != nil && !agedParents[row[fki].AsString()] {
			return false
		}
		return true
	}

	moved := 0
	_, err = m.eng.Mgr.RunInTxn(func(tx *txn.Txn) error {
		for _, p := range entry.Partitions {
			if p == cold.partition {
				continue
			}
			snap, err := tx.SnapshotTable(p.Table.Name())
			if err != nil {
				return err
			}
			for pos := 0; pos < snap.NumRows(); pos++ {
				if !snap.Visible(pos) {
					continue
				}
				row := snap.Row(pos)
				if !isCold(row) {
					continue
				}
				if err := tx.Delete(p.Table.Name(), pos); err != nil {
					return err
				}
				if err := tx.Insert(cold.partition.Table.Name(), row); err != nil {
					return err
				}
				if d := row[di].AsInt(); d > cold.maxDate {
					cold.maxDate = d
				}
				moved++
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if cold.maxDate < cutoff {
		cold.maxDate = cutoff
	}
	if err := m.demoteCold(table, cold); err != nil {
		return moved, err
	}
	return moved, nil
}

// coldPartition returns (creating on first use) the cold partition of a
// table.
func (m *Manager) coldPartition(entry *catalog.TableEntry, rule Rule) (*coldMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.cold[entry.Name]; ok {
		return c, nil
	}
	name := entry.Name + "_aged"
	p := &catalog.Partition{
		Name:            name,
		Table:           newColdTable(name, entry),
		Tier:            catalog.TierExtended,
		ColdReadPenalty: m.ColdReadPenaltyMicros,
	}
	if err := m.eng.Cat.AttachPartition(entry.Name, p); err != nil {
		return nil, err
	}
	m.eng.Mgr.Register(p.Table)
	c := &coldMeta{rule: rule, partition: p}
	m.cold[entry.Name] = c
	return c, nil
}

// newColdTable creates the backing column-store table of a cold partition.
func newColdTable(name string, entry *catalog.TableEntry) *columnstore.Table {
	return columnstore.NewTable(name, entry.Schema)
}

// agedKeySet collects the parent keys present in the parent's cold
// partition.
func (m *Manager) agedKeySet(parentTable, keyCol string) map[string]bool {
	m.mu.Lock()
	c, ok := m.cold[parentTable]
	m.mu.Unlock()
	out := map[string]bool{}
	if !ok {
		return out
	}
	entry, found := m.eng.Cat.Table(parentTable)
	if !found {
		return out
	}
	ki := entry.Schema.ColIndex(keyCol)
	snap := c.partition.Table.Snapshot(m.eng.Mgr.Now())
	for pos := 0; pos < snap.NumRows(); pos++ {
		if snap.Visible(pos) {
			out[snap.Get(ki, pos).AsString()] = true
		}
	}
	return out
}

// HotOnly executes fn with the table's cold partitions excluded from every
// scan — the join-split optimization: when a dependency rule guarantees
// the join partner of a hot row is hot, the query runs on hot partitions
// only.
func (m *Manager) HotOnly(tables []string, fn func() error) error {
	m.mu.Lock()
	for _, t := range tables {
		m.hotOnly[t] = true
	}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		for _, t := range tables {
			delete(m.hotOnly, t)
		}
		m.mu.Unlock()
	}()
	return fn()
}

// CanRestrictJoinToHot reports whether a dependency rule couples child to
// parent such that joining the parent's hot rows needs only the child's
// hot partition (and vice versa).
func (m *Manager) CanRestrictJoinToHot(parent, child string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.rules[child]
	return ok && r.DependsOn != nil && r.DependsOn.ParentTable == parent
}

// Prune is the semantic partition pruner (installed as the engine's
// PruneHook): it removes cold partitions whenever the query predicates
// contradict the aging rule's invariants.
func (m *Manager) Prune(entry *catalog.TableEntry, conjuncts []sqlexec.Expr, parts []*catalog.Partition) []*catalog.Partition {
	m.mu.Lock()
	c, hasCold := m.cold[entry.Name]
	hotOnly := m.hotOnly[entry.Name]
	m.mu.Unlock()
	if !hasCold {
		return parts
	}
	drop := hotOnly
	if !drop {
		for _, conj := range conjuncts {
			col, op, lit, ok := simpleComparison(conj)
			if !ok {
				continue
			}
			// Invariant 1: every cold row has StatusCol == ClosedStatus.
			if col == c.rule.StatusCol {
				if op == "=" && lit.AsString() != c.rule.ClosedStatus {
					drop = true
				}
				if op == "<>" && lit.AsString() == c.rule.ClosedStatus {
					drop = true
				}
			}
			// Invariant 2: every cold row has DateCol <= maxDate.
			if col == c.rule.DateCol && (op == ">" || op == ">=") && lit.AsInt() > c.maxDate {
				drop = true
			}
		}
	}
	if !drop {
		return parts
	}
	kept := parts[:0:0]
	for _, p := range parts {
		if p != c.partition {
			kept = append(kept, p)
		}
	}
	return kept
}

// StatsPrune is the statistics-based baseline of §III: it knows only
// per-partition min/max of the compared column — no business semantics.
// Status-equality queries cannot prune (strings overlap), only date
// ranges sometimes can.
func StatsPrune(eng *sqlexec.Engine) sqlexec.PruneHook {
	return func(entry *catalog.TableEntry, conjuncts []sqlexec.Expr, parts []*catalog.Partition) []*catalog.Partition {
		kept := parts[:0:0]
		for _, p := range parts {
			if statsMayMatch(eng, entry, p, conjuncts) {
				kept = append(kept, p)
			}
		}
		return kept
	}
}

func statsMayMatch(eng *sqlexec.Engine, entry *catalog.TableEntry, p *catalog.Partition, conjuncts []sqlexec.Expr) bool {
	for _, conj := range conjuncts {
		col, op, lit, ok := simpleComparison(conj)
		if !ok || !lit.Numeric() {
			continue
		}
		ci := entry.Schema.ColIndex(col)
		if ci < 0 {
			continue
		}
		min, max, any := partitionMinMax(eng, p, ci)
		if !any {
			return false // empty partition never matches
		}
		switch op {
		case "=":
			if lit.AsInt() < min || lit.AsInt() > max {
				return false
			}
		case ">", ">=":
			if max < lit.AsInt() {
				return false
			}
		case "<", "<=":
			if min > lit.AsInt() {
				return false
			}
		}
	}
	return true
}

func partitionMinMax(eng *sqlexec.Engine, p *catalog.Partition, col int) (min, max int64, any bool) {
	snap := p.Table.Snapshot(eng.Mgr.Now())
	for pos := 0; pos < snap.NumRows(); pos++ {
		if !snap.Visible(pos) {
			continue
		}
		v := snap.Get(col, pos)
		if v.IsNull() {
			continue
		}
		x := v.AsInt()
		if !any {
			min, max, any = x, x, true
			continue
		}
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, any
}

// simpleComparison decomposes col <op> literal conjuncts.
func simpleComparison(e sqlexec.Expr) (col, op string, lit value.Value, ok bool) {
	be, isBin := e.(*sqlexec.BinaryExpr)
	if !isBin {
		return "", "", value.Null, false
	}
	cr, lok := be.L.(*sqlexec.ColRef)
	l, rok := be.R.(*sqlexec.Literal)
	if lok && rok {
		return cr.Name, be.Op, l.Val, true
	}
	cr2, rok2 := be.R.(*sqlexec.ColRef)
	l2, lok2 := be.L.(*sqlexec.Literal)
	if rok2 && lok2 {
		flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
		return cr2.Name, flip[be.Op], l2.Val, true
	}
	return "", "", value.Null, false
}
